"""Smoke tests: the public API surface and the runnable example scripts.

The examples double as end-to-end integration tests; running their
``main()`` functions here guarantees the documented entry points never rot.
Output is captured by pytest, so the suite stays quiet.
"""

import importlib
import pathlib

import pytest

import repro


EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _load_example(name: str):
    """Import an example script as a module (examples/ is not a package)."""
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestPublicAPI:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ lists {name} but it is missing"

    def test_key_entry_points_are_callable(self):
        for name in (
            "parallel_sample",
            "parallel_sparsify",
            "certify_approximation",
            "baswana_sen_spanner",
            "t_bundle_spanner",
            "solve_laplacian",
            "solve_sdd",
            "spielman_srivastava_sparsify",
        ):
            assert callable(getattr(repro, name))

    def test_subpackages_importable(self):
        for module in (
            "repro.graphs",
            "repro.spanners",
            "repro.resistance",
            "repro.parallel",
            "repro.core",
            "repro.solvers",
            "repro.baselines",
            "repro.analysis",
            "repro.linalg",
            "repro.utils",
        ):
            importlib.import_module(module)

    def test_docstrings_present_on_public_functions(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) and not isinstance(obj, type(repro)):
                assert obj.__doc__, f"{name} is missing a docstring"


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "method_comparison.py",
        "distributed_sparsification.py",
        "sdd_solver_demo.py",
        "image_affinity_sparsification.py",
        "streaming_sparsification.py",
    ],
)
def test_example_scripts_run(script, capsys):
    module = _load_example(script)
    module.main()
    captured = capsys.readouterr()
    assert captured.out.strip(), f"{script} produced no output"
