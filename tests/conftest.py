"""Shared fixtures for the test suite.

Graphs used across many test modules are built once per session (they are
immutable, so sharing is safe).  Sizes are kept small enough that the exact
(dense pseudoinverse / dense eigensolver) reference paths stay fast.

Also installs a global per-test timeout (``session_timeout`` in
pyproject.toml): the resilience layer's retry/backoff loops mean a bug can
hang instead of fail, and a hung test must fail the build, not stall it.
Implemented with ``SIGALRM`` (no third-party plugin available in the
pinned environment); on platforms without ``SIGALRM`` the hook is a no-op.
"""

from __future__ import annotations

import signal

import numpy as np
import pytest

from repro.graphs import generators
from repro.graphs.graph import Graph

_HAS_SIGALRM = hasattr(signal, "SIGALRM")


def pytest_addoption(parser):
    parser.addini(
        "session_timeout",
        "per-test timeout in seconds enforced via SIGALRM (0 disables)",
        default="0",
    )


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    timeout = float(item.config.getini("session_timeout"))
    if not _HAS_SIGALRM or timeout <= 0:
        yield
        return

    def _on_timeout(signum, frame):
        pytest.fail(
            f"test exceeded the global {timeout:.0f}s timeout "
            "(hung retry/backoff loop?)",
            pytrace=False,
        )

    previous = signal.signal(signal.SIGALRM, _on_timeout)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="session")
def triangle_graph() -> Graph:
    """Unweighted triangle: the smallest graph with a cycle."""
    return Graph(3, [0, 1, 2], [1, 2, 0], [1.0, 1.0, 1.0])


@pytest.fixture(scope="session")
def weighted_path() -> Graph:
    """Weighted path 0-1-2-3 with distinct weights."""
    return Graph(4, [0, 1, 2], [1, 2, 3], [1.0, 2.0, 4.0])


@pytest.fixture(scope="session")
def small_er_graph() -> Graph:
    """Connected Erdős–Rényi graph, 60 vertices."""
    return generators.erdos_renyi_graph(60, 0.15, seed=11, ensure_connected=True)


@pytest.fixture(scope="session")
def medium_er_graph() -> Graph:
    """Denser connected Erdős–Rényi graph, 120 vertices."""
    return generators.erdos_renyi_graph(120, 0.2, seed=7, ensure_connected=True)


@pytest.fixture(scope="session")
def grid_graph_8x8() -> Graph:
    """8x8 grid (structured sparse graph)."""
    return generators.grid_graph(8, 8)


@pytest.fixture(scope="session")
def dumbbell() -> Graph:
    """Two 12-cliques joined by a 3-edge path (high-leverage bridge edges)."""
    return generators.dumbbell_graph(12, path_length=3)


@pytest.fixture(scope="session")
def weighted_er_graph() -> Graph:
    """Connected ER graph with random weights in [0.5, 5]."""
    return generators.erdos_renyi_graph(
        80, 0.12, seed=23, weight_range=(0.5, 5.0), ensure_connected=True
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
