"""Shared fixtures for the test suite.

Graphs used across many test modules are built once per session (they are
immutable, so sharing is safe).  Sizes are kept small enough that the exact
(dense pseudoinverse / dense eigensolver) reference paths stay fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import generators
from repro.graphs.graph import Graph


@pytest.fixture(scope="session")
def triangle_graph() -> Graph:
    """Unweighted triangle: the smallest graph with a cycle."""
    return Graph(3, [0, 1, 2], [1, 2, 0], [1.0, 1.0, 1.0])


@pytest.fixture(scope="session")
def weighted_path() -> Graph:
    """Weighted path 0-1-2-3 with distinct weights."""
    return Graph(4, [0, 1, 2], [1, 2, 3], [1.0, 2.0, 4.0])


@pytest.fixture(scope="session")
def small_er_graph() -> Graph:
    """Connected Erdős–Rényi graph, 60 vertices."""
    return generators.erdos_renyi_graph(60, 0.15, seed=11, ensure_connected=True)


@pytest.fixture(scope="session")
def medium_er_graph() -> Graph:
    """Denser connected Erdős–Rényi graph, 120 vertices."""
    return generators.erdos_renyi_graph(120, 0.2, seed=7, ensure_connected=True)


@pytest.fixture(scope="session")
def grid_graph_8x8() -> Graph:
    """8x8 grid (structured sparse graph)."""
    return generators.grid_graph(8, 8)


@pytest.fixture(scope="session")
def dumbbell() -> Graph:
    """Two 12-cliques joined by a 3-edge path (high-leverage bridge edges)."""
    return generators.dumbbell_graph(12, path_length=3)


@pytest.fixture(scope="session")
def weighted_er_graph() -> Graph:
    """Connected ER graph with random weights in [0.5, 5]."""
    return generators.erdos_renyi_graph(
        80, 0.12, seed=23, weight_range=(0.5, 5.0), ensure_connected=True
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
