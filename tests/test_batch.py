"""Tests for the batch sparsification API (repro.core.batch)."""

import pytest

from repro.core.batch import BatchSparsifyResult, sparsify_many
from repro.core.config import SparsifierConfig
from repro.core.sparsify import parallel_sparsify
from repro.graphs import generators as gen
from repro.parallel.metrics import combine_parallel
from repro.utils.rng import as_rng, split_rng


@pytest.fixture(scope="module")
def graph_batch():
    return [gen.erdos_renyi_graph(50, 0.2, seed=i, ensure_connected=True) for i in range(4)]


def _edge_tuple(graph):
    g = graph.coalesce()
    return (g.edge_u.tolist(), g.edge_v.tolist(), g.edge_weights.tolist())


class TestSparsifyMany:
    def test_results_in_input_order(self, graph_batch):
        result = sparsify_many(graph_batch, epsilon=0.5, rho=4, seed=1)
        assert result.num_jobs == len(graph_batch)
        for graph, job in zip(graph_batch, result.results):
            assert job.input_edges == graph.num_edges
            assert 0 < job.output_edges <= graph.num_edges

    def test_matches_individual_runs_bit_exactly(self, graph_batch):
        batch = sparsify_many(graph_batch, epsilon=0.5, rho=4, seed=42)
        job_rngs = split_rng(as_rng(42), len(graph_batch))
        for i, graph in enumerate(graph_batch):
            solo = parallel_sparsify(graph, epsilon=0.5, rho=4, seed=job_rngs[i])
            assert _edge_tuple(batch.results[i].sparsifier) == _edge_tuple(solo.sparsifier)

    @pytest.mark.parametrize("backend,workers", [("thread", 4), ("process", 2)])
    def test_backends_match_serial(self, graph_batch, backend, workers):
        serial = sparsify_many(graph_batch, epsilon=0.5, rho=4, seed=7, backend="serial")
        other = sparsify_many(
            graph_batch, epsilon=0.5, rho=4, seed=7, backend=backend, max_workers=workers
        )
        assert other.backend_name == backend
        for a, b in zip(serial.results, other.results):
            assert _edge_tuple(a.sparsifier) == _edge_tuple(b.sparsifier)

    def test_aggregate_cost_is_fork_join(self, graph_batch):
        result = sparsify_many(graph_batch, epsilon=0.5, rho=4, seed=1)
        expected = combine_parallel(r.cost for r in result.results)
        assert result.cost.work == pytest.approx(expected.work)
        assert result.cost.depth == pytest.approx(expected.depth)
        # Fork/join: total work adds, depth is the max over jobs.
        assert result.cost.work == pytest.approx(sum(r.cost.work for r in result.results))
        assert result.cost.depth == pytest.approx(max(r.cost.depth for r in result.results))

    def test_totals_and_reduction_factor(self, graph_batch):
        result = sparsify_many(graph_batch, epsilon=0.5, rho=4, seed=1)
        assert result.total_input_edges == sum(g.num_edges for g in graph_batch)
        assert result.total_output_edges == sum(r.output_edges for r in result.results)
        assert result.reduction_factor == pytest.approx(
            result.total_input_edges / result.total_output_edges
        )

    def test_empty_batch(self):
        result = sparsify_many([], epsilon=0.5, seed=0)
        assert isinstance(result, BatchSparsifyResult)
        assert result.num_jobs == 0
        assert result.total_input_edges == 0
        assert result.reduction_factor == 1.0

    def test_config_backend_fields_are_used(self, graph_batch):
        config = SparsifierConfig.practical(backend="thread", max_workers=2)
        result = sparsify_many(graph_batch[:2], epsilon=0.5, rho=4, config=config, seed=3)
        assert result.backend_name == "thread"
        assert result.max_workers == 2

    def test_jobs_with_sharded_config(self, graph_batch):
        # num_shards flows into each job; the batch still matches solo runs.
        config = SparsifierConfig.practical(bundle_t=2, num_shards=2)
        batch = sparsify_many(graph_batch[:2], epsilon=0.5, rho=4, config=config, seed=9)
        job_rngs = split_rng(as_rng(9), 2)
        for i in range(2):
            solo = parallel_sparsify(
                graph_batch[i], epsilon=0.5, rho=4, config=config, seed=job_rngs[i]
            )
            assert _edge_tuple(batch.results[i].sparsifier) == _edge_tuple(solo.sparsifier)
