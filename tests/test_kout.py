"""Random k-out sampling (repro.graphs.kout) and its registry method."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.exceptions import GraphError
from repro.graphs import generators as gen
from repro.graphs.connectivity import is_connected
from repro.graphs.graph import Graph
from repro.graphs.kout import (
    default_k_out,
    k_out_keep_probabilities,
    k_out_select,
    random_k_out_sample,
)


class TestKOutSelect:
    def test_deterministic_per_seed(self):
        graph = gen.erdos_renyi_graph(120, 0.2, seed=3)
        a = random_k_out_sample(graph, k=3, seed=11)
        b = random_k_out_sample(graph, k=3, seed=11)
        c = random_k_out_sample(graph, k=3, seed=12)
        assert np.array_equal(a.kept_indices, b.kept_indices)
        assert not np.array_equal(a.kept_indices, c.kept_indices)

    def test_every_vertex_keeps_min_k_deg_incident_edges(self):
        graph = gen.erdos_renyi_graph(90, 0.1, seed=5)
        k = 2
        kept = k_out_select(
            graph.num_vertices, graph.edge_u, graph.edge_v, k, np.random.default_rng(0)
        )
        degrees = np.bincount(
            np.concatenate([graph.edge_u, graph.edge_v]), minlength=graph.num_vertices
        )
        kept_degrees = np.bincount(
            np.concatenate([graph.edge_u[kept], graph.edge_v[kept]]),
            minlength=graph.num_vertices,
        )
        # Each vertex picks min(k, deg) edges itself; its other endpoint's
        # picks can only add to that.
        assert np.all(kept_degrees >= np.minimum(degrees, k))

    def test_kept_indices_sorted_unique_and_k_exceeding_degree_keeps_all(self):
        graph = gen.cycle_graph(30)
        result = random_k_out_sample(graph, k=10, seed=1)
        assert np.array_equal(result.kept_indices, np.unique(result.kept_indices))
        # Every vertex has degree 2 < k, so every edge is picked by both ends.
        assert result.output_edges == graph.num_edges

    def test_empty_graph_and_bad_k(self):
        empty = Graph.empty(5)
        result = random_k_out_sample(empty, k=2, seed=0)
        assert result.output_edges == 0
        with pytest.raises(GraphError, match="k must be >= 1"):
            k_out_select(5, empty.edge_u, empty.edge_v, 0, np.random.default_rng(0))

    def test_default_k_is_log2_n(self):
        assert default_k_out(1024) == 10
        assert default_k_out(2) == 1

    def test_log_k_preserves_connectivity(self):
        for seed in range(5):
            graph = gen.erdos_renyi_graph(200, 0.08, seed=seed, ensure_connected=True)
            result = random_k_out_sample(graph, seed=seed)
            assert is_connected(result.sparsifier)


class TestHorvitzThompsonReweighting:
    def test_keep_probabilities_formula(self):
        graph = gen.star_graph(10)  # center degree 9, leaves degree 1
        probs = k_out_keep_probabilities(
            graph.num_vertices, graph.edge_u, graph.edge_v, k=3
        )
        p_center, p_leaf = 3 / 9, 1.0
        assert np.allclose(probs, p_center + p_leaf - p_center * p_leaf)

    def test_total_weight_unbiased_over_seeds(self):
        """HT reweighting makes the expected total weight match the input."""
        graph = gen.erdos_renyi_graph(60, 0.25, seed=7, weight_range=(0.5, 2.0))
        totals = [
            random_k_out_sample(graph, k=3, seed=s).sparsifier.total_weight
            for s in range(200)
        ]
        assert np.mean(totals) == pytest.approx(graph.total_weight, rel=0.02)

    def test_reweight_false_keeps_original_weights(self):
        graph = gen.erdos_renyi_graph(50, 0.3, seed=2, weight_range=(0.5, 2.0))
        result = random_k_out_sample(graph, k=2, seed=3, reweight=False)
        assert np.array_equal(
            result.sparsifier.edge_weights, graph.edge_weights[result.kept_indices]
        )


class TestKOutRegistryMethod:
    def test_registered_and_reduces_dense_graph(self):
        assert "k-out" in repro.available_methods()
        graph = gen.erdos_renyi_graph(150, 0.4, seed=9, ensure_connected=True)
        result = repro.sparsify(graph, method="k-out", seed=4)
        assert result.method == "k-out"
        assert 0 < result.output_edges < result.input_edges
        assert is_connected(result.sparsifier)

    def test_alias_and_options_forwarded(self):
        graph = gen.erdos_renyi_graph(80, 0.3, seed=1)
        by_alias = repro.sparsify(graph, method="kout", seed=5, k=2)
        direct = random_k_out_sample(graph, k=2, seed=5)
        assert np.array_equal(by_alias.sparsifier.edge_weights, direct.sparsifier.edge_weights)
