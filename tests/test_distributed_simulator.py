"""Tests for the synchronous distributed simulator and the distributed spanner."""

import numpy as np
import pytest

from repro.exceptions import MessageTooLargeError, SimulationError
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.parallel.distributed import (
    DistributedSimulator,
    NodeProgram,
    payload_words,
)
from repro.spanners.distributed_spanner import distributed_baswana_sen_spanner
from repro.spanners.verification import max_stretch_of_nonspanner_edges


class EchoProgram(NodeProgram):
    """Each node sends its id to all neighbours once, then collects what it hears."""

    def step(self, ctx, round_number, inbox):
        if round_number == 1:
            ctx.broadcast(ctx.node_id)
            return False
        ctx.state["heard"] = sorted(msg.payload for msg in inbox)
        return True

    def finalize(self, ctx):
        return ctx.state.get("heard", [])


class FloodMinProgram(NodeProgram):
    """Classic flood-min: all nodes converge to the minimum vertex id.

    Nodes run for a fixed number of rounds (an upper bound on the diameter)
    because a node that terminated early could not learn of later updates —
    termination detection is itself a non-trivial distributed problem.
    """

    def __init__(self, num_rounds: int):
        self.num_rounds = num_rounds

    def initialize(self, ctx):
        ctx.state["min"] = ctx.node_id
        ctx.state["changed"] = True

    def step(self, ctx, round_number, inbox):
        for msg in inbox:
            if msg.payload < ctx.state["min"]:
                ctx.state["min"] = msg.payload
                ctx.state["changed"] = True
        if ctx.state["changed"]:
            ctx.broadcast(ctx.state["min"])
            ctx.state["changed"] = False
        return round_number >= self.num_rounds

    def finalize(self, ctx):
        return ctx.state["min"]


class ChattyProgram(NodeProgram):
    """Sends an over-long message to trigger the size check."""

    def step(self, ctx, round_number, inbox):
        if ctx.neighbors.shape[0]:
            ctx.send(int(ctx.neighbors[0]), list(range(10_000)))
        return True


class RogueProgram(NodeProgram):
    """Attempts to message a non-neighbour."""

    def step(self, ctx, round_number, inbox):
        target = (ctx.node_id + 2) % 4
        ctx.send(target, "hi")
        return True


class TestPayloadWords:
    def test_scalars(self):
        assert payload_words(3) == 1
        assert payload_words(2.5) == 1
        assert payload_words(None) == 1
        assert payload_words(True) == 1

    def test_containers(self):
        assert payload_words((1, 2, 3)) == 3
        assert payload_words([1, [2, 3]]) == 3
        assert payload_words({"a": 1}) >= 2

    def test_strings_and_arrays(self):
        assert payload_words("abcdefgh") == 1
        assert payload_words("x" * 80) == 10
        assert payload_words(np.zeros(7)) == 7

    def test_unknown_object(self):
        class Thing:
            pass

        assert payload_words(Thing()) == 8


class TestSimulator:
    def test_echo_program_delivers_neighbour_ids(self):
        g = gen.cycle_graph(6)
        sim = DistributedSimulator(g, seed=0)
        result = sim.run(EchoProgram())
        assert result.completed
        for node, heard in result.outputs.items():
            expected = sorted(int(x) for x in g.neighbors(node))
            assert heard == expected

    def test_flood_min_converges(self):
        g = gen.erdos_renyi_graph(40, 0.1, seed=1, ensure_connected=True)
        sim = DistributedSimulator(g, seed=0)
        result = sim.run(FloodMinProgram(num_rounds=45))
        assert result.completed
        assert all(value == 0 for value in result.outputs.values())

    def test_flood_min_message_efficiency(self):
        """Nodes only broadcast when their value changes, so messages stay O(n * diameter-ish)."""
        g = gen.path_graph(20)
        sim = DistributedSimulator(g, seed=0)
        result = sim.run(FloodMinProgram(num_rounds=25))
        assert result.completed
        assert all(value == 0 for value in result.outputs.values())
        assert result.cost.messages <= 20 * 25

    def test_cost_counters(self):
        g = gen.cycle_graph(5)
        sim = DistributedSimulator(g, seed=0)
        result = sim.run(EchoProgram())
        assert result.cost.rounds == result.rounds_executed
        assert result.cost.messages == 10  # each of 5 nodes broadcasts to 2 neighbours
        assert result.cost.max_message_words >= 1
        assert sum(result.messages_per_round) == result.cost.messages

    def test_message_size_limit_enforced(self):
        g = gen.cycle_graph(4)
        sim = DistributedSimulator(g, seed=0)
        with pytest.raises(MessageTooLargeError):
            sim.run(ChattyProgram())

    def test_send_to_non_neighbour_rejected(self):
        g = gen.cycle_graph(4)
        sim = DistributedSimulator(g, seed=0)
        with pytest.raises(SimulationError):
            sim.run(RogueProgram())

    def test_max_rounds_cap(self):
        class NeverDone(NodeProgram):
            def step(self, ctx, round_number, inbox):
                return False

        g = gen.cycle_graph(4)
        sim = DistributedSimulator(g, seed=0)
        result = sim.run(NeverDone(), max_rounds=7)
        assert not result.completed
        assert result.rounds_executed == 7

    def test_empty_graph(self):
        sim = DistributedSimulator(Graph(0), seed=0)
        result = sim.run(EchoProgram())
        assert result.completed
        assert result.outputs == {}

    def test_second_run_does_not_accumulate_counters(self):
        """run() resets per-run state: cost reflects the latest run only.

        Previously a second run() on one simulator kept accumulating
        ``_total_messages`` / ``_messages_per_round`` while ``_rounds``
        restarted, so ``cost`` mixed runs.
        """
        g = gen.cycle_graph(5)
        sim = DistributedSimulator(g, seed=0)
        first = sim.run(EchoProgram())
        second = sim.run(EchoProgram())
        assert second.cost == first.cost
        assert second.cost.messages == 10
        assert second.messages_per_round == first.messages_per_round
        assert len(second.messages_per_round) == second.rounds_executed
        # The simulator's own cost property agrees with the last result.
        assert sim.cost == second.cost

    def test_per_node_rngs_are_reproducible(self):
        g = gen.cycle_graph(6)

        class RandomDraw(NodeProgram):
            def step(self, ctx, round_number, inbox):
                ctx.state["value"] = float(ctx.rng.random())
                return True

            def finalize(self, ctx):
                return ctx.state["value"]

        r1 = DistributedSimulator(g, seed=5).run(RandomDraw()).outputs
        r2 = DistributedSimulator(g, seed=5).run(RandomDraw()).outputs
        assert r1 == r2
        # Nodes have distinct streams.
        assert len(set(r1.values())) > 1


class TestDistributedSpanner:
    def test_stretch_guarantee(self, medium_er_graph):
        result = distributed_baswana_sen_spanner(medium_er_graph, seed=3)
        assert result.completed
        max_stretch, _ = max_stretch_of_nonspanner_edges(
            result.simple_graph, result.edge_indices
        )
        assert max_stretch <= result.stretch_target + 1e-9

    def test_stretch_guarantee_weighted(self, weighted_er_graph):
        result = distributed_baswana_sen_spanner(weighted_er_graph, seed=4)
        max_stretch, _ = max_stretch_of_nonspanner_edges(
            result.simple_graph, result.edge_indices
        )
        assert max_stretch <= result.stretch_target + 1e-9

    def test_round_complexity_polylog(self):
        """Rounds follow the schedule: O(k^2) = O(log^2 n), independent of m."""
        sparse = gen.erdos_renyi_graph(100, 0.05, seed=0, ensure_connected=True)
        dense = gen.erdos_renyi_graph(100, 0.5, seed=0, ensure_connected=True)
        r_sparse = distributed_baswana_sen_spanner(sparse, seed=1)
        r_dense = distributed_baswana_sen_spanner(dense, seed=1)
        assert r_sparse.cost.rounds == r_dense.cost.rounds
        k = r_sparse.k
        assert r_sparse.cost.rounds <= (k + 2) * (k + 2)

    def test_message_size_logarithmic(self, medium_er_graph):
        result = distributed_baswana_sen_spanner(medium_er_graph, seed=5)
        limit = 4 * int(np.ceil(np.log2(medium_er_graph.num_vertices))) + 16
        assert result.cost.max_message_words <= limit

    def test_message_count_scales_with_m(self):
        sparse = gen.erdos_renyi_graph(80, 0.05, seed=2, ensure_connected=True)
        dense = gen.erdos_renyi_graph(80, 0.4, seed=2, ensure_connected=True)
        msgs_sparse = distributed_baswana_sen_spanner(sparse, seed=3).cost.messages
        msgs_dense = distributed_baswana_sen_spanner(dense, seed=3).cost.messages
        assert msgs_dense > msgs_sparse

    def test_spanner_size_comparable_to_sequential(self, medium_er_graph):
        from repro.spanners.baswana_sen import baswana_sen_spanner

        dist = distributed_baswana_sen_spanner(medium_er_graph, seed=6)
        seq = baswana_sen_spanner(medium_er_graph, seed=6)
        n = medium_er_graph.num_vertices
        budget = 6.0 * n * np.log2(n)
        assert dist.spanner.num_edges <= budget
        # Same asymptotic class: within a small factor of the sequential output.
        assert dist.spanner.num_edges <= 3 * seq.spanner.num_edges + n

    def test_multigraph_input_coalesced(self, triangle_graph):
        doubled = triangle_graph + triangle_graph
        result = distributed_baswana_sen_spanner(doubled, seed=0)
        assert result.simple_graph.num_edges == 3

    def test_path_graph_spanner_is_whole_path(self):
        path = gen.path_graph(16)
        result = distributed_baswana_sen_spanner(path, seed=0)
        # A tree has no redundant edges: the spanner must keep every edge.
        assert result.spanner.num_edges == path.num_edges
