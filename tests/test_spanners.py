"""Tests for repro.spanners: Baswana–Sen, greedy, bundles, trees, verification."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import GraphError
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.parallel.pram import PRAMTracker
from repro.resistance.stretch import stretch_over_subgraph
from repro.spanners.baswana_sen import baswana_sen_spanner
from repro.spanners.bundle import bundle_for_epsilon, bundle_size_for_epsilon, t_bundle_spanner
from repro.spanners.greedy import greedy_spanner
from repro.spanners.low_stretch_tree import low_stretch_tree, tree_bundle
from repro.spanners.verification import (
    max_stretch_of_nonspanner_edges,
    repair_spanner,
    verify_spanner,
)


class TestBaswanaSen:
    def test_stretch_guarantee_er(self, medium_er_graph):
        result = baswana_sen_spanner(medium_er_graph, seed=1)
        assert verify_spanner(medium_er_graph, result)

    def test_stretch_guarantee_weighted(self, weighted_er_graph):
        result = baswana_sen_spanner(weighted_er_graph, seed=2)
        assert verify_spanner(weighted_er_graph, result)

    def test_stretch_guarantee_grid(self, grid_graph_8x8):
        result = baswana_sen_spanner(grid_graph_8x8, seed=3)
        assert verify_spanner(grid_graph_8x8, result)

    def test_spanner_is_subgraph(self, medium_er_graph):
        result = baswana_sen_spanner(medium_er_graph, seed=4)
        assert result.edge_indices.max(initial=-1) < medium_er_graph.num_edges
        original_keys = medium_er_graph.edge_keys()
        assert np.all(np.isin(result.spanner.edge_keys(), original_keys))
        # Weights are preserved.
        assert np.allclose(
            result.spanner.edge_weights,
            medium_er_graph.edge_weights[result.edge_indices],
        )

    def test_spanner_size_reasonable(self):
        """Expected size O(k n^{1+1/k}) ~ O(n log n); check against a generous multiple."""
        g = gen.erdos_renyi_graph(300, 0.25, seed=5, ensure_connected=True)
        result = baswana_sen_spanner(g, seed=6)
        n = g.num_vertices
        budget = 6.0 * n * np.log2(n)
        assert result.spanner.num_edges <= budget
        assert result.spanner.num_edges < g.num_edges  # actually sparser than the input

    def test_spanner_preserves_connectivity(self, medium_er_graph):
        from repro.graphs.connectivity import is_connected

        result = baswana_sen_spanner(medium_er_graph, seed=7)
        assert is_connected(result.spanner)

    def test_small_k_returns_denser_spanner(self, medium_er_graph):
        k1 = baswana_sen_spanner(medium_er_graph, k=1, seed=8)
        # k = 1 means stretch 1: every edge must be kept.
        assert k1.spanner.num_edges == medium_er_graph.num_edges

    def test_k_validation(self, triangle_graph):
        with pytest.raises(GraphError):
            baswana_sen_spanner(triangle_graph, k=0)

    def test_empty_graph(self):
        result = baswana_sen_spanner(Graph(5), seed=0)
        assert result.spanner.num_edges == 0

    def test_single_edge_graph(self):
        g = Graph(2, [0], [1], [3.0])
        result = baswana_sen_spanner(g, seed=0)
        assert result.spanner.num_edges == 1

    def test_cost_accounting_positive(self, medium_er_graph):
        tracker = PRAMTracker()
        result = baswana_sen_spanner(medium_er_graph, seed=9, tracker=tracker)
        assert result.cost.work > 0
        assert result.cost.depth > 0
        assert "spanner/group-min" in tracker.breakdown()

    def test_work_scales_roughly_linearly_in_m(self):
        g_small = gen.erdos_renyi_graph(100, 0.1, seed=1, ensure_connected=True)
        g_large = gen.erdos_renyi_graph(100, 0.4, seed=1, ensure_connected=True)
        w_small = baswana_sen_spanner(g_small, seed=2).cost.work
        w_large = baswana_sen_spanner(g_large, seed=2).cost.work
        ratio = g_large.num_edges / g_small.num_edges
        assert w_large / w_small < 4 * ratio

    def test_reproducible_with_seed(self, medium_er_graph):
        a = baswana_sen_spanner(medium_er_graph, seed=11)
        b = baswana_sen_spanner(medium_er_graph, seed=11)
        assert np.array_equal(a.edge_indices, b.edge_indices)

    @given(seed=st.integers(min_value=0, max_value=3_000))
    @settings(max_examples=15, deadline=None)
    def test_stretch_property_random_weighted_graphs(self, seed):
        g = gen.erdos_renyi_graph(
            35, 0.3, seed=seed, weight_range=(0.5, 4.0), ensure_connected=True
        )
        result = baswana_sen_spanner(g, seed=seed + 1)
        max_stretch, _ = max_stretch_of_nonspanner_edges(g, result.edge_indices)
        assert max_stretch <= result.stretch_target + 1e-9


class TestGreedySpanner:
    def test_stretch_guarantee(self, small_er_graph):
        result = greedy_spanner(small_er_graph)
        assert verify_spanner(small_er_graph, result)

    def test_weighted_stretch_guarantee(self, weighted_er_graph):
        result = greedy_spanner(weighted_er_graph, k=3)
        assert verify_spanner(weighted_er_graph, result)

    def test_greedy_no_sparser_than_tree(self, small_er_graph):
        result = greedy_spanner(small_er_graph)
        assert result.spanner.num_edges >= small_er_graph.num_vertices - 1

    def test_k1_keeps_everything(self, triangle_graph):
        result = greedy_spanner(triangle_graph, k=1)
        assert result.spanner.num_edges == 3

    def test_deterministic(self, small_er_graph):
        a = greedy_spanner(small_er_graph)
        b = greedy_spanner(small_er_graph)
        assert np.array_equal(a.edge_indices, b.edge_indices)

    def test_k_validation(self, triangle_graph):
        with pytest.raises(GraphError):
            greedy_spanner(triangle_graph, k=0)

    def test_greedy_at_most_baswana_sen_size_on_dense_graph(self):
        """Greedy is the size-optimal classical construction; it should not be larger."""
        g = gen.erdos_renyi_graph(120, 0.5, seed=3, ensure_connected=True)
        greedy = greedy_spanner(g)
        randomized = baswana_sen_spanner(g, seed=4)
        assert greedy.spanner.num_edges <= randomized.spanner.num_edges


class TestBundle:
    def test_components_are_edge_disjoint(self, medium_er_graph):
        bundle = t_bundle_spanner(medium_er_graph, t=3, seed=0)
        seen = np.concatenate(bundle.component_edge_indices)
        assert len(seen) == len(np.unique(seen))

    def test_bundle_union_matches_components(self, medium_er_graph):
        bundle = t_bundle_spanner(medium_er_graph, t=3, seed=1)
        union = np.unique(np.concatenate(bundle.component_edge_indices))
        assert np.array_equal(union, bundle.edge_indices)

    def test_each_component_spans_remaining_graph(self, medium_er_graph):
        """H_i must be a spanner of G minus the previous components (Definition 1)."""
        bundle = t_bundle_spanner(medium_er_graph, t=3, seed=2)
        target = 2 * np.ceil(np.log2(medium_er_graph.num_vertices)) - 1
        removed = np.zeros(medium_er_graph.num_edges, dtype=bool)
        for component in bundle.component_edge_indices:
            remaining = medium_er_graph.select_edges(~removed)
            remaining_ids = np.flatnonzero(~removed)
            local = np.flatnonzero(np.isin(remaining_ids, component))
            spanner = remaining.select_edges(local)
            outside_local = np.setdiff1d(np.arange(remaining.num_edges), local)
            if outside_local.size:
                stretches = stretch_over_subgraph(remaining, spanner, outside_local)
                assert stretches.max() <= target + 1e-9
            removed[component] = True

    def test_bundle_size_grows_with_t(self, medium_er_graph):
        small = t_bundle_spanner(medium_er_graph, t=1, seed=3)
        large = t_bundle_spanner(medium_er_graph, t=4, seed=3)
        assert large.num_edges > small.num_edges

    def test_bundle_exhaustion_on_sparse_graph(self):
        tree = gen.path_graph(30)
        bundle = t_bundle_spanner(tree, t=5, seed=0)
        assert bundle.exhausted
        assert bundle.num_edges == tree.num_edges
        assert bundle.t <= 5

    def test_requested_t_recorded(self, small_er_graph):
        bundle = t_bundle_spanner(small_er_graph, t=2, seed=1)
        assert bundle.requested_t == 2
        assert bundle.t <= 2

    def test_t_validation(self, triangle_graph):
        with pytest.raises(GraphError):
            t_bundle_spanner(triangle_graph, t=0)

    def test_bundle_size_for_epsilon_formula(self):
        assert bundle_size_for_epsilon(1024, 1.0, constant=24.0) == 2400
        assert bundle_size_for_epsilon(1024, 0.5, constant=24.0) == 9600

    def test_bundle_size_rejects_bad_epsilon(self):
        with pytest.raises(GraphError):
            bundle_size_for_epsilon(100, 0.0)

    def test_bundle_for_epsilon_uses_formula(self, triangle_graph):
        result = bundle_for_epsilon(triangle_graph, epsilon=1.0, constant=1.0)
        assert result.requested_t == bundle_size_for_epsilon(3, 1.0, constant=1.0)

    def test_cost_accumulates_over_components(self, medium_er_graph):
        one = t_bundle_spanner(medium_er_graph, t=1, seed=5)
        three = t_bundle_spanner(medium_er_graph, t=3, seed=5)
        assert three.cost.work > one.cost.work


class TestLowStretchTree:
    def test_tree_is_spanning_forest(self, medium_er_graph):
        indices = low_stretch_tree(medium_er_graph, seed=0)
        tree = medium_er_graph.select_edges(indices)
        from repro.graphs.connectivity import is_connected

        assert tree.num_edges == medium_er_graph.num_vertices - 1
        assert is_connected(tree)

    def test_tree_on_disconnected_graph(self, triangle_graph):
        from repro.graphs.operations import disjoint_union

        g = disjoint_union(triangle_graph, triangle_graph)
        indices = low_stretch_tree(g, seed=1)
        assert len(indices) == 4  # n - components = 6 - 2

    def test_empty_graph(self):
        assert low_stretch_tree(Graph(4), seed=0).shape == (0,)

    def test_candidate_validation(self, triangle_graph):
        with pytest.raises(GraphError):
            low_stretch_tree(triangle_graph, num_center_candidates=0)

    def test_tree_bundle_components_smaller_than_spanner_bundle(self, medium_er_graph):
        """Remark 2: tree components have n-1 edges vs O(n log n) for spanners."""
        trees = tree_bundle(medium_er_graph, t=2, seed=3)
        spanners = t_bundle_spanner(medium_er_graph, t=2, seed=3)
        assert trees.num_edges < spanners.num_edges

    def test_tree_bundle_components_edge_disjoint(self, medium_er_graph):
        bundle = tree_bundle(medium_er_graph, t=3, seed=4)
        seen = np.concatenate(bundle.component_edge_indices)
        assert len(seen) == len(np.unique(seen))

    def test_tree_bundle_t_validation(self, triangle_graph):
        with pytest.raises(GraphError):
            tree_bundle(triangle_graph, t=0)


class TestVerificationAndRepair:
    def test_max_stretch_zero_when_all_edges_in_spanner(self, triangle_graph):
        max_stretch, stretches = max_stretch_of_nonspanner_edges(
            triangle_graph, np.arange(3)
        )
        assert max_stretch == 0.0
        assert stretches.shape == (0,)

    def test_verify_rejects_bad_spanner(self, medium_er_graph):
        """A single tree edge set is generally NOT a 2log n spanner of a dense ER graph... but
        a star certainly isn't a low-stretch spanner of a long cycle."""
        cycle = gen.cycle_graph(64)
        # Keep only one edge: everything else has infinite stretch.
        baswana_sen_spanner(cycle, seed=0)
        fake_indices = np.array([0])
        max_stretch, _ = max_stretch_of_nonspanner_edges(cycle, fake_indices)
        assert max_stretch > 2 * np.log2(64)

    def test_repair_fixes_violations(self):
        cycle = gen.cycle_graph(64)
        sparse_indices = np.array([0])
        target = 2 * np.log2(64)
        repaired = repair_spanner(cycle, sparse_indices, target)
        max_stretch, _ = max_stretch_of_nonspanner_edges(cycle, repaired)
        assert max_stretch <= target + 1e-9
        assert len(repaired) > 1

    def test_repair_no_op_for_valid_spanner(self, small_er_graph):
        result = baswana_sen_spanner(small_er_graph, seed=2)
        repaired = repair_spanner(
            small_er_graph, result.edge_indices, result.stretch_target
        )
        assert np.array_equal(repaired, np.unique(result.edge_indices))

    def test_repair_with_full_spanner(self, triangle_graph):
        repaired = repair_spanner(triangle_graph, np.arange(3), 1.0)
        assert np.array_equal(repaired, np.arange(3))


class TestDistributedBundleSpanner:
    """The per-shard unit of work of the distributed sparsifier."""

    def test_components_are_edge_disjoint(self, small_er_graph):
        from repro.spanners.distributed_spanner import distributed_bundle_spanner

        result = distributed_bundle_spanner(small_er_graph.coalesce(), t=3, seed=1)
        assert result.components_built == 3
        seen = np.concatenate(result.component_edge_indices)
        assert seen.shape[0] == np.unique(seen).shape[0]
        assert np.array_equal(result.edge_indices, np.unique(seen))
        assert result.completed
        assert result.cost.rounds > 0

    def test_pre_split_seeds_match_single_seed(self, small_er_graph):
        from repro.spanners.distributed_spanner import distributed_bundle_spanner
        from repro.utils.rng import as_rng, split_rng

        simple = small_er_graph.coalesce()
        by_seed = distributed_bundle_spanner(simple, t=2, seed=5)
        by_streams = distributed_bundle_spanner(
            simple, t=2, component_seeds=split_rng(as_rng(5), 2)
        )
        assert np.array_equal(by_seed.edge_indices, by_streams.edge_indices)

    def test_rejects_bad_t_and_short_seed_list(self, small_er_graph):
        from repro.spanners.distributed_spanner import distributed_bundle_spanner
        from repro.utils.rng import as_rng, split_rng

        simple = small_er_graph.coalesce()
        with pytest.raises(GraphError):
            distributed_bundle_spanner(simple, t=0)
        with pytest.raises(GraphError):
            distributed_bundle_spanner(simple, t=3, component_seeds=split_rng(as_rng(0), 2))

    def test_exhausts_small_graph(self):
        from repro.spanners.distributed_spanner import distributed_bundle_spanner

        path = gen.path_graph(12)
        result = distributed_bundle_spanner(path, t=4, seed=0)
        # A tree is its own spanner: one component absorbs everything.
        assert result.components_built == 1
        assert result.edge_indices.shape[0] == path.num_edges

    def test_edge_order_independent(self, small_er_graph):
        """The protocol runs on the coalesced (key-sorted) graph, so a
        permuted edge order must select the same edge *keys* per component."""
        from repro.spanners.distributed_spanner import distributed_bundle_spanner

        simple = small_er_graph.coalesce()
        rng = np.random.default_rng(123)
        perm = rng.permutation(simple.num_edges)
        shuffled = simple.select_edges(perm)

        sorted_result = distributed_bundle_spanner(simple, t=2, seed=9)
        shuffled_result = distributed_bundle_spanner(shuffled, t=2, seed=9)
        assert sorted_result.components_built == shuffled_result.components_built
        for a, b in zip(
            sorted_result.component_edge_indices,
            shuffled_result.component_edge_indices,
        ):
            keys_a = np.sort(simple.edge_keys()[a])
            keys_b = np.sort(shuffled.edge_keys()[b])
            assert np.array_equal(keys_a, keys_b)
