"""Tests for vertex-range edge sharding (repro.graphs.sharding)."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.graphs.sharding import partition_vertex_ranges, shard_edges


class TestPartitionVertexRanges:
    def test_covers_all_vertices(self):
        b = partition_vertex_ranges(100, 8)
        assert b[0] == 0 and b[-1] == 100
        assert np.all(np.diff(b) >= 0)

    def test_balanced_within_one(self):
        b = partition_vertex_ranges(103, 8)
        sizes = np.diff(b)
        assert sizes.max() - sizes.min() <= 1

    def test_single_shard(self):
        assert partition_vertex_ranges(10, 1).tolist() == [0, 10]

    def test_more_shards_than_vertices(self):
        b = partition_vertex_ranges(3, 8)
        assert b[0] == 0 and b[-1] == 3
        assert len(b) == 9

    def test_invalid_num_shards(self):
        with pytest.raises(GraphError):
            partition_vertex_ranges(10, 0)


class TestShardEdges:
    @pytest.fixture(scope="class")
    def grid(self):
        return gen.grid_graph(10, 10)

    def test_every_edge_exactly_once(self, grid):
        shards = shard_edges(grid, 4)
        parts = list(shards.shard_edge_indices) + [shards.boundary_edge_indices]
        combined = np.sort(np.concatenate(parts))
        assert combined.tolist() == list(range(grid.num_edges))

    def test_shard_edges_stay_in_vertex_range(self, grid):
        shards = shard_edges(grid, 4)
        for s, idx in enumerate(shards.shard_edge_indices):
            lo, hi = shards.boundaries[s], shards.boundaries[s + 1]
            assert np.all((grid.edge_u[idx] >= lo) & (grid.edge_u[idx] < hi))
            assert np.all((grid.edge_v[idx] >= lo) & (grid.edge_v[idx] < hi))

    def test_boundary_edges_cross_ranges(self, grid):
        shards = shard_edges(grid, 4)
        vu = shards.vertex_shard(grid.edge_u[shards.boundary_edge_indices])
        vv = shards.vertex_shard(grid.edge_v[shards.boundary_edge_indices])
        assert np.all(vu != vv)

    def test_grid_has_few_boundary_edges(self, grid):
        # Row-major grids have locality: a 4-way vertex-range split cuts
        # only the rows between bands.
        shards = shard_edges(grid, 4)
        assert shards.num_boundary_edges < grid.num_edges // 4

    def test_single_shard_has_no_boundary(self, grid):
        shards = shard_edges(grid, 1)
        assert shards.num_boundary_edges == 0
        assert shards.shard_edge_indices[0].shape[0] == grid.num_edges

    def test_shard_subgraph(self, grid):
        shards = shard_edges(grid, 4)
        sub = shards.shard_subgraph(grid, 0)
        assert sub.num_vertices == grid.num_vertices
        assert sub.num_edges == shards.shard_sizes[0]

    def test_empty_graph(self):
        shards = shard_edges(Graph(0), 3)
        assert shards.num_boundary_edges == 0
        assert all(size == 0 for size in shards.shard_sizes)

    def test_more_shards_than_vertices_gives_empty_shards(self):
        g = Graph(3, [0, 1], [1, 2], [1.0, 1.0])
        shards = shard_edges(g, 8)
        # Every vertex is alone in its range, so every edge is boundary.
        assert shards.num_boundary_edges == 2
        assert sum(shards.shard_sizes) == 0
