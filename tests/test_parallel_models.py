"""Tests for repro.parallel: cost records, PRAM tracker, executor."""

import time

import numpy as np
import pytest

from repro.parallel.metrics import (
    DistributedCost,
    PRAMCost,
    combine_concurrent,
    combine_parallel,
    combine_sequential,
)
from repro.parallel.pram import PRAMTracker
from repro.parallel.scheduler import ParallelExecutor


class TestPRAMCost:
    def test_sequential_composition(self):
        a = PRAMCost(work=10, depth=2)
        b = PRAMCost(work=5, depth=3)
        c = a.then(b)
        assert c.work == 15
        assert c.depth == 5

    def test_parallel_composition(self):
        a = PRAMCost(work=10, depth=2)
        b = PRAMCost(work=5, depth=3)
        c = a.alongside(b)
        assert c.work == 15
        assert c.depth == 3

    def test_add_operator_is_sequential(self):
        assert (PRAMCost(1, 1) + PRAMCost(2, 2)).depth == 3

    def test_scaled(self):
        c = PRAMCost(work=4, depth=2).scaled(3)
        assert c.work == 12
        assert c.depth == 6

    def test_combine_helpers(self):
        costs = [PRAMCost(1, 1), PRAMCost(2, 2), PRAMCost(3, 3)]
        seq = combine_sequential(costs)
        par = combine_parallel(costs)
        assert seq.work == par.work == 6
        assert seq.depth == 6
        assert par.depth == 3

    def test_frozen(self):
        with pytest.raises(Exception):
            PRAMCost(1, 1).work = 5


class TestDistributedCost:
    def test_sequential_composition(self):
        a = DistributedCost(rounds=3, messages=100, max_message_words=4)
        b = DistributedCost(rounds=2, messages=50, max_message_words=8)
        c = a + b
        assert c.rounds == 5
        assert c.messages == 150
        assert c.max_message_words == 8

    def test_default_zero(self):
        zero = DistributedCost()
        assert (zero + zero).rounds == 0

    def test_concurrent_composition(self):
        a = DistributedCost(rounds=3, messages=100, max_message_words=4)
        b = DistributedCost(rounds=7, messages=50, max_message_words=8)
        c = a.alongside(b)
        assert c.rounds == 7          # concurrent networks: max rounds
        assert c.messages == 150      # messages always add
        assert c.max_message_words == 8

    def test_combine_concurrent_folds(self):
        costs = [DistributedCost(rounds=r, messages=10) for r in (2, 9, 4)]
        total = combine_concurrent(costs)
        assert total.rounds == 9
        assert total.messages == 30
        assert combine_concurrent([]).rounds == 0


class TestPRAMTracker:
    def test_basic_charging(self):
        tracker = PRAMTracker()
        tracker.charge(work=100, depth=2)
        tracker.charge(work=50, depth=1)
        assert tracker.work == 150
        assert tracker.depth == 3

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            PRAMTracker().charge(work=-1, depth=0)

    def test_parallel_for(self):
        tracker = PRAMTracker()
        tracker.charge_parallel_for(1000, work_per_item=2.0)
        assert tracker.work == 2000
        assert tracker.depth == 1

    def test_reduction_depth_logarithmic(self):
        tracker = PRAMTracker()
        tracker.charge_reduction(1024)
        assert tracker.depth == pytest.approx(10.0)
        assert tracker.work == 1024

    def test_parallel_region_max_depth(self):
        tracker = PRAMTracker()
        with tracker.parallel_region():
            tracker.charge(work=10, depth=5)
            tracker.charge(work=20, depth=2)
        assert tracker.work == 30
        assert tracker.depth == 5

    def test_sequential_after_region(self):
        tracker = PRAMTracker()
        with tracker.parallel_region():
            tracker.charge(work=1, depth=7)
        tracker.charge(work=1, depth=3)
        assert tracker.depth == 10

    def test_nested_parallel_regions(self):
        tracker = PRAMTracker()
        with tracker.parallel_region():
            with tracker.parallel_region():
                tracker.charge(work=5, depth=4)
            tracker.charge(work=5, depth=9)
        assert tracker.work == 10
        assert tracker.depth == 9

    def test_labelled_breakdown(self):
        tracker = PRAMTracker()
        tracker.charge(work=10, depth=1, label="a")
        tracker.charge(work=5, depth=1, label="a")
        tracker.charge(work=3, depth=1, label="b")
        breakdown = tracker.breakdown()
        assert breakdown["a"].work == 15
        assert breakdown["b"].work == 3

    def test_merge_from_sequential(self):
        main = PRAMTracker()
        child = PRAMTracker()
        child.charge(work=7, depth=2, label="x")
        main.merge_from(child)
        assert main.work == 7
        assert main.depth == 2
        assert "x" in main.breakdown()

    def test_merge_from_parallel(self):
        main = PRAMTracker()
        main.charge(work=1, depth=1)
        child = PRAMTracker()
        child.charge(work=5, depth=10)
        main.merge_from(child, parallel=True)
        assert main.work == 6
        assert main.depth == 11

    def test_reset(self):
        tracker = PRAMTracker()
        tracker.charge(work=5, depth=5, label="x")
        tracker.reset()
        assert tracker.work == 0
        assert tracker.breakdown() == {}

    def test_charge_cost_object(self):
        tracker = PRAMTracker()
        tracker.charge_cost(PRAMCost(work=3, depth=2))
        assert tracker.total == PRAMCost(3, 2)


class TestParallelExecutor:
    def test_sequential_map_order(self):
        ex = ParallelExecutor(max_workers=1)
        assert ex.map(lambda x: x * x, [1, 2, 3]) == [1, 4, 9]
        assert not ex.is_parallel

    def test_threaded_map_order(self):
        ex = ParallelExecutor(max_workers=4)
        assert ex.map(lambda x: x + 1, list(range(20))) == list(range(1, 21))
        assert ex.is_parallel

    def test_disabled_flag(self):
        ex = ParallelExecutor(max_workers=4, enabled=False)
        assert not ex.is_parallel
        assert ex.map(lambda x: x, [1]) == [1]

    def test_empty_input(self):
        assert ParallelExecutor(max_workers=2).map(lambda x: x, []) == []

    def test_exception_propagates(self):
        ex = ParallelExecutor(max_workers=2)

        def boom(x):
            raise RuntimeError("fail")

        with pytest.raises(RuntimeError):
            ex.map(boom, [1, 2])

    def test_starmap(self):
        ex = ParallelExecutor(max_workers=2)
        assert ex.starmap(lambda a, b: a + b, [(1, 2), (3, 4)]) == [3, 7]

    def test_run_all(self):
        ex = ParallelExecutor(max_workers=2)
        assert ex.run_all([lambda: 1, lambda: 2]) == [1, 2]

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            ParallelExecutor(max_workers=0)

    def test_results_match_sequential_for_numpy_work(self):
        rng = np.random.default_rng(0)
        arrays = [rng.standard_normal(100) for _ in range(8)]
        seq = ParallelExecutor(max_workers=1).map(np.sum, arrays)
        par = ParallelExecutor(max_workers=4).map(np.sum, arrays)
        assert np.allclose(seq, par)

    def test_first_error_cancels_pending_tasks(self):
        # Failing first item, slow tail items, one worker: without
        # fail-fast cancellation every tail item would still run during
        # pool shutdown; with it only already-dequeued items may finish.
        executed = []

        def job(x):
            if x == 0:
                raise RuntimeError("fail first")
            time.sleep(0.02)
            executed.append(x)
            return x

        ex = ParallelExecutor(max_workers=2)
        with pytest.raises(RuntimeError, match="fail first"):
            ex.map(job, list(range(30)))
        assert len(executed) < 29

    def test_delegates_to_backend_layer(self):
        from repro.parallel.backends import SerialBackend, ThreadBackend

        assert isinstance(ParallelExecutor(max_workers=1).backend, SerialBackend)
        assert isinstance(ParallelExecutor(max_workers=3).backend, ThreadBackend)
        assert isinstance(ParallelExecutor(max_workers=3, enabled=False).backend, SerialBackend)
