"""The streaming sparsifier: ingest, compaction, snapshots, journal, certify.

The contract under test (see ``repro/streaming/sparsifier.py``):

* **Batch parity** — a one-compaction stream reproduces the batch
  ``parallel_sample`` / ``t_bundle_spanner`` construction bit for bit
  (pinned against the same frozen goldens as the batch spanner path).
* **Split invariance** — in the default mode the snapshot after a given
  edge sequence does not depend on how the sequence was chopped into
  ``ingest`` calls.
* **Crash resumability** — journaled streams resume bit-exactly, losing
  at most the one batch whose journal append was torn.
* **Retry neutrality** — compactions rebuild their RNG per attempt, so a
  crashed-and-retried stream equals a never-crashed one bit for bit.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.core.config import SparsifierConfig
from repro.core.sample import parallel_sample
from repro.exceptions import (
    CheckpointError,
    FaultInjectionError,
    GraphError,
    StreamingError,
)
from repro.graphs import generators as gen
from repro.parallel.failure import FailurePolicy
from repro.streaming import StreamingSparsifier, StreamJournal, compaction_rng
from repro.streaming import sparsifier as sparsifier_module
from repro.testing.faults import FaultPlan
from repro.utils.rng import as_rng

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

FAST_RETRY = FailurePolicy(
    on_error="retry", max_attempts=3, backoff_base=0.0, jitter=0.0
)


@pytest.fixture(scope="module")
def stream_graph():
    """Dense enough that small bundles leave real sampling work."""
    return gen.erdos_renyi_graph(150, 0.3, seed=9, weight_range=(0.5, 2.0))


def edge_batches(graph, batch_size):
    edges = np.column_stack([graph.edge_u, graph.edge_v])
    for lo in range(0, graph.num_edges, batch_size):
        yield edges[lo : lo + batch_size], graph.edge_weights[lo : lo + batch_size]


def run_stream(graph, batch_size, **kwargs):
    stream = StreamingSparsifier(graph.num_vertices, **kwargs)
    for edges, weights in edge_batches(graph, batch_size):
        stream.ingest(edges, weights)
    return stream


class TestIngestValidation:
    def test_rejects_malformed_batches(self):
        stream = StreamingSparsifier(10, seed=0)
        with pytest.raises(GraphError, match=r"\(m, 2\)"):
            stream.ingest(np.zeros((3, 4)))
        with pytest.raises(GraphError, match="integers"):
            stream.ingest(np.array([[0.5, 1.0]]))
        with pytest.raises(GraphError, match="self-loops"):
            stream.ingest(np.array([[2, 2]]))
        with pytest.raises(GraphError, match=r"\[0, 10\)"):
            stream.ingest(np.array([[0, 10]]))
        with pytest.raises(GraphError, match="finite and positive"):
            stream.ingest(np.array([[0, 1]]), np.array([-1.0]))
        with pytest.raises(GraphError, match="twice|both"):
            stream.ingest(np.array([[0.0, 1.0, 2.0]]), np.array([1.0]))
        assert stream.batches_ingested == 0

    def test_inline_weights_and_orientation(self):
        stream = StreamingSparsifier(5, seed=0, compaction_interval=10**6)
        stream.ingest(np.array([[3.0, 1.0, 2.5], [4.0, 0.0, 1.5]]))
        snap = stream.snapshot()
        assert np.array_equal(snap.graph.edge_u, [1, 0])  # min endpoint first
        assert np.array_equal(snap.graph.edge_v, [3, 4])
        assert np.array_equal(snap.graph.edge_weights, [2.5, 1.5])

    def test_empty_batch_advances_batch_index(self):
        stream = StreamingSparsifier(5, seed=0)
        record = stream.ingest(np.empty((0, 2), dtype=np.int64))
        assert record.batch_index == 0 and record.edges == 0
        assert stream.batches_ingested == 1
        record = stream.ingest([])
        assert record.batch_index == 1

    def test_misconfiguration_rejected(self):
        with pytest.raises(StreamingError, match="window"):
            StreamingSparsifier(5, window=0)
        with pytest.raises(StreamingError, match="decay"):
            StreamingSparsifier(5, decay=1.5)
        with pytest.raises(StreamingError, match="compaction_interval"):
            StreamingSparsifier(5, compaction_interval=0)
        with pytest.raises(StreamingError, match="sampling probability"):
            StreamingSparsifier(5, sampling_probability=1.0)
        with pytest.raises(StreamingError, match="cannot skip"):
            StreamingSparsifier(
                5, failure_policy=FailurePolicy(on_error="collect", max_attempts=2)
            )
        with pytest.raises(StreamingError, match="use_tree_bundle"):
            StreamingSparsifier(5, config=SparsifierConfig(use_tree_bundle=True))


class TestBatchParity:
    """The streaming path vs. the batch path, bit for bit."""

    def test_one_compaction_stream_equals_parallel_sample(self, stream_graph):
        config = SparsifierConfig()
        batch = parallel_sample(stream_graph, config=config, seed=42)
        stream = run_stream(
            stream_graph,
            batch_size=stream_graph.num_edges,
            config=config,
            seed=42,
            compaction_interval=stream_graph.num_edges,
        )
        snap = stream.snapshot()
        assert np.array_equal(snap.graph.edge_u, batch.sparsifier.edge_u)
        assert np.array_equal(snap.graph.edge_v, batch.sparsifier.edge_v)
        assert np.array_equal(snap.graph.edge_weights, batch.sparsifier.edge_weights)

    def test_compaction_zero_rng_is_the_batch_stream(self):
        rng = compaction_rng(1234, 0)
        assert np.array_equal(rng.integers(0, 2**31, 8), as_rng(1234).integers(0, 2**31, 8))
        # Later compactions draw from independent streams.
        assert not np.array_equal(
            compaction_rng(1234, 1).integers(0, 2**31, 8),
            compaction_rng(1234, 2).integers(0, 2**31, 8),
        )

    def test_first_compaction_bundle_matches_frozen_goldens(self):
        """The stream's bundle selection is pinned by the same goldens as
        the batch spanner: one whole-graph ingest must select the exact
        frozen edge set, for every golden case."""
        spec = importlib.util.spec_from_file_location(
            "spanner_golden_generator", GOLDEN_DIR / "generate_goldens.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        goldens = json.loads((GOLDEN_DIR / "spanner_goldens.json").read_text())
        for name, graph, seed, k, t in module.cases():
            stream = StreamingSparsifier(
                graph.num_vertices,
                t=t,
                k=k,
                seed=seed,
                compaction_interval=graph.num_edges,
            )
            stream.ingest(
                np.column_stack([graph.edge_u, graph.edge_v]), graph.edge_weights
            )
            expected = np.array(goldens[name]["bundle_edge_indices"], dtype=np.int64)
            assert np.array_equal(stream.records[0].bundle_indices, expected), name


class TestSplitInvariance:
    """Snapshots are a pure function of (edge sequence, seed, interval)."""

    def test_snapshot_invariant_to_batch_split(self, stream_graph):
        reference = run_stream(
            stream_graph, batch_size=stream_graph.num_edges, seed=7,
            compaction_interval=500,
        ).snapshot()
        rng = np.random.default_rng(0)
        for _ in range(5):
            # Random split of the same edge sequence into 1..12 batches.
            cuts = np.sort(
                rng.choice(stream_graph.num_edges, size=rng.integers(1, 12), replace=False)
            )
            bounds = [0, *cuts.tolist(), stream_graph.num_edges]
            stream = StreamingSparsifier(
                stream_graph.num_vertices, seed=7, compaction_interval=500
            )
            edges = np.column_stack([stream_graph.edge_u, stream_graph.edge_v])
            for lo, hi in zip(bounds[:-1], bounds[1:]):
                stream.ingest(edges[lo:hi], stream_graph.edge_weights[lo:hi])
            snap = stream.snapshot()
            assert np.array_equal(snap.graph.edge_u, reference.graph.edge_u)
            assert np.array_equal(snap.graph.edge_v, reference.graph.edge_v)
            assert np.array_equal(snap.graph.edge_weights, reference.graph.edge_weights)

    def test_snapshot_is_pure_and_repeatable(self, stream_graph):
        stream = run_stream(stream_graph, batch_size=400, seed=3, compaction_interval=600)
        first = stream.snapshot()
        second = stream.snapshot()
        assert np.array_equal(first.graph.edge_weights, second.graph.edge_weights)
        assert first.stats == second.stats


class TestEndToEnd:
    def test_multi_batch_stream_certifies(self, stream_graph):
        """>= 3 batches, real sampling, and the snapshot passes the
        ApproximationReport quality gates against the exact live graph."""
        stream = run_stream(
            stream_graph, batch_size=300, t=1, k=2, seed=11, compaction_interval=400
        )
        assert stream.batches_ingested >= 3
        assert stream.compactions >= 3
        snap = stream.snapshot()
        assert 0 < snap.num_edges < stream_graph.num_edges
        # Retained state stays bounded: bundle + one block, not the stream.
        assert stream.retained_edges < stream_graph.num_edges
        certificate = stream.certify(num_pairs=12, num_vectors=24, seed=2)
        assert certificate.report.connectivity_preserved
        assert certificate.holds(0.8)
        assert certificate.batches_ingested == stream.batches_ingested
        assert certificate.reference_edges == stream_graph.num_edges
        assert certificate.stats.solver == "cg"

    def test_unified_result_wiring(self, stream_graph):
        stream = run_stream(stream_graph, batch_size=500, seed=1, compaction_interval=700)
        snap = stream.snapshot()
        unified = snap.unified
        assert unified.method == "streaming"
        assert unified.input_edges == stream_graph.num_edges
        assert unified.output_edges == snap.num_edges
        assert unified.native is snap.stats
        assert unified.native.batches_ingested == stream.batches_ingested
        repr(unified)  # lightweight native: no recursive repr

    def test_flush_compacts_the_tail(self, stream_graph):
        stream = run_stream(stream_graph, batch_size=450, seed=2, compaction_interval=10**6)
        assert stream.compactions == 0 and stream.pending_edges == stream_graph.num_edges
        record = stream.flush()
        assert record is not None and stream.pending_edges == 0
        assert stream.flush() is None  # nothing left


class TestJournalResume:
    def test_resume_is_bit_exact_and_reattaches(self, stream_graph, tmp_path):
        journal = tmp_path / "stream.jsonl"
        stream = run_stream(
            stream_graph, batch_size=400, seed=9, compaction_interval=500,
            journal=journal,
        )
        resumed = StreamingSparsifier.resume(journal)
        assert resumed.batches_ingested == stream.batches_ingested
        assert resumed.compactions == stream.compactions
        a, b = stream.snapshot(), resumed.snapshot()
        assert np.array_equal(a.graph.edge_u, b.graph.edge_u)
        assert np.array_equal(a.graph.edge_v, b.graph.edge_v)
        assert np.array_equal(a.graph.edge_weights, b.graph.edge_weights)
        # The journal is reattached: new batches keep appending.
        resumed.ingest(np.array([[0, 1]]), np.array([1.0]))
        again = StreamingSparsifier.resume(journal)
        assert again.batches_ingested == resumed.batches_ingested

    def test_torn_trailing_append_loses_at_most_one_batch(self, stream_graph, tmp_path):
        journal = tmp_path / "stream.jsonl"
        run_stream(
            stream_graph, batch_size=400, seed=9, compaction_interval=500,
            journal=journal,
        )
        active = sorted(journal.glob("segment-*.jsonl"))[-1]
        with open(active, "a") as handle:
            handle.write('{"kind": "batch", "index": 99, "u": [1')  # crash mid-append
        resumed = StreamingSparsifier.resume(journal)
        reference = run_stream(
            stream_graph, batch_size=400, seed=9, compaction_interval=500
        )
        assert resumed.batches_ingested == reference.batches_ingested
        assert np.array_equal(
            resumed.snapshot().graph.edge_weights,
            reference.snapshot().graph.edge_weights,
        )

    def test_corruption_and_misuse_are_refused(self, stream_graph, tmp_path):
        journal = tmp_path / "stream.jsonl"
        run_stream(
            stream_graph, batch_size=700, seed=9, compaction_interval=500,
            journal=journal,
        )
        # A fresh stream must not silently append to an existing journal.
        with pytest.raises(CheckpointError, match="resume"):
            StreamingSparsifier(stream_graph.num_vertices, journal=journal)
        # Mid-segment corruption is not a torn append.
        active = sorted(journal.glob("segment-*.jsonl"))[-1]
        lines = active.read_text().splitlines()
        lines[1] = lines[1][:20]
        active.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="corrupt"):
            StreamingSparsifier.resume(journal)

    def test_digest_mismatch_refused(self, tmp_path):
        journal_path = tmp_path / "stream.jsonl"
        stream = StreamingSparsifier(6, seed=0, journal=journal_path)
        stream.ingest(np.array([[0, 1], [2, 3]]))
        active = sorted(journal_path.glob("segment-*.jsonl"))[-1]
        record = json.loads(active.read_text().splitlines()[1])
        record["w"] = [2.0, 2.0]  # tamper with the edges, keep the digest
        lines = active.read_text().splitlines()
        lines[1] = json.dumps(record)
        active.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="digest"):
            StreamingSparsifier.resume(journal_path)

    def test_missing_or_headerless_journal_refused(self, tmp_path):
        with pytest.raises(CheckpointError, match="missing or empty"):
            StreamJournal.load(tmp_path / "absent.jsonl")
        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text('{"kind": "batch", "index": 0}\n')
        with pytest.raises(CheckpointError, match="header"):
            StreamJournal.load(bogus)


class TestWindowAndDecay:
    def test_window_evicts_old_batches_everywhere(self, stream_graph):
        stream = StreamingSparsifier(
            stream_graph.num_vertices, seed=1, window=2, compaction_interval=10**6
        )
        edges = np.column_stack([stream_graph.edge_u, stream_graph.edge_v])
        for lo in range(0, 900, 300):
            stream.ingest(edges[lo : lo + 300], stream_graph.edge_weights[lo : lo + 300])
        assert stream.live_input_edges == 600
        snap = stream.snapshot()
        assert snap.num_edges == 600  # nothing compacted: live edges verbatim
        assert np.array_equal(snap.graph.edge_weights, stream_graph.edge_weights[300:900])
        # The certification reference is windowed identically.
        assert stream.reference_graph().num_edges == 600

    def test_window_evicts_retained_state_after_compaction(self, stream_graph):
        stream = StreamingSparsifier(
            stream_graph.num_vertices, seed=1, window=1, compaction_interval=250
        )
        edges = np.column_stack([stream_graph.edge_u, stream_graph.edge_v])
        for lo in range(0, 900, 300):
            stream.ingest(edges[lo : lo + 300], stream_graph.edge_weights[lo : lo + 300])
        # Only the latest batch is live; every retained/pending edge must
        # come from it (weights are a subset of the batch's, up to boosts).
        assert stream.live_input_edges == 300
        snap = stream.snapshot()
        assert snap.num_edges <= 300

    def test_decay_scales_weights_lazily(self):
        stream = StreamingSparsifier(20, seed=0, decay=0.5, compaction_interval=10**6)
        first = np.array([[0, 1], [1, 2]])
        second = np.array([[2, 3]])
        stream.ingest(first, np.array([2.0, 4.0]))
        stream.ingest(second, np.array([8.0]))
        snap = stream.snapshot()
        assert np.allclose(snap.graph.edge_weights, [1.0, 2.0, 8.0])
        assert np.allclose(stream.reference_graph().edge_weights, [1.0, 2.0, 8.0])

    def test_decay_underflow_drops_dead_edges(self):
        stream = StreamingSparsifier(10, seed=0, decay=1e-300, compaction_interval=10**6)
        stream.ingest(np.array([[0, 1]]), np.array([1.0]))
        for _ in range(3):
            stream.ingest(np.empty((0, 2), dtype=np.int64))
        snap = stream.snapshot()  # 1e-900 underflows to 0: edge is dead
        assert snap.num_edges == 0
        assert snap.graph.num_vertices == 10


class TestKOutPresampling:
    def test_dense_burst_is_reduced(self):
        graph = gen.erdos_renyi_graph(60, 0.6, seed=4, weight_range=(0.5, 2.0))
        stream = StreamingSparsifier(
            graph.num_vertices, seed=3, kout_presample=3, compaction_interval=10**6
        )
        record = stream.ingest(
            np.column_stack([graph.edge_u, graph.edge_v]), graph.edge_weights
        )
        assert record.edges == graph.num_edges
        assert record.edges_after_presample < record.edges
        snap = stream.snapshot()
        assert snap.num_edges == record.edges_after_presample
        # HT reweighting: kept weights are boosted above their originals.
        assert snap.graph.total_weight == pytest.approx(
            graph.total_weight, rel=0.35
        )

    def test_small_batches_pass_through_untouched(self):
        stream = StreamingSparsifier(100, seed=3, kout_presample=3, compaction_interval=10**6)
        record = stream.ingest(np.array([[0, 1], [1, 2]]))
        assert record.edges_after_presample == record.edges == 2

    def test_presample_is_deterministic_and_journal_replayable(self, tmp_path):
        graph = gen.erdos_renyi_graph(60, 0.6, seed=4)
        journal = tmp_path / "stream.jsonl"
        stream = StreamingSparsifier(
            graph.num_vertices, seed=3, kout_presample=2, compaction_interval=800,
            journal=journal,
        )
        stream.ingest(np.column_stack([graph.edge_u, graph.edge_v]), graph.edge_weights)
        resumed = StreamingSparsifier.resume(journal)
        assert np.array_equal(
            stream.snapshot().graph.edge_weights,
            resumed.snapshot().graph.edge_weights,
        )


class TestResilience:
    """Fault-injected compactions under a FailurePolicy (PR 7 machinery)."""

    def run_fault_stream(self, graph, monkeypatch, policy, plan):
        monkeypatch.setattr(
            sparsifier_module,
            "_compaction_worker",
            plan.wrap(sparsifier_module._compaction_worker),
        )
        return run_stream(
            graph, batch_size=300, t=1, k=2, seed=5, compaction_interval=400,
            failure_policy=policy,
        )

    def test_retry_is_output_neutral(self, stream_graph, monkeypatch):
        clean = run_stream(
            stream_graph, batch_size=300, t=1, k=2, seed=5, compaction_interval=400
        ).snapshot()
        faulted = self.run_fault_stream(
            stream_graph, monkeypatch, FAST_RETRY,
            FaultPlan(crash_index=0, crash_attempts=1),
        ).snapshot()
        assert np.array_equal(clean.graph.edge_u, faulted.graph.edge_u)
        assert np.array_equal(clean.graph.edge_v, faulted.graph.edge_v)
        assert np.array_equal(clean.graph.edge_weights, faulted.graph.edge_weights)

    def test_unprotected_fault_raises(self, stream_graph, monkeypatch):
        with pytest.raises(FaultInjectionError):
            self.run_fault_stream(
                stream_graph, monkeypatch, None,
                FaultPlan(crash_index=0, crash_attempts=1),
            )

    def test_permanent_fault_exhausts_retries(self, stream_graph, monkeypatch):
        with pytest.raises(FaultInjectionError):
            self.run_fault_stream(
                stream_graph, monkeypatch, FAST_RETRY,
                FaultPlan(crash_index=0, crash_attempts=99),
            )


class TestRegistryMethod:
    def test_registered_and_runs(self, stream_graph):
        assert "streaming" in repro.available_methods()
        result = repro.sparsify(
            stream_graph, method="streaming", seed=11, num_batches=3,
            t=1, k=2, compaction_interval=400,
        )
        assert result.method == "streaming"
        assert 0 < result.output_edges < result.input_edges
        assert result.num_rounds == 3

    def test_single_batch_method_matches_parallel_sample(self, stream_graph):
        config = SparsifierConfig()
        batch = parallel_sample(stream_graph, config=config, seed=5)
        result = repro.sparsify(
            stream_graph, method="stream", seed=5, num_batches=1,
            compaction_interval=stream_graph.num_edges,
        )
        assert np.array_equal(
            result.sparsifier.edge_weights, batch.sparsifier.edge_weights
        )

    def test_unknown_option_rejected(self, stream_graph):
        with pytest.raises(StreamingError, match="unknown streaming option"):
            repro.sparsify(stream_graph, method="streaming", seed=1, bogus=3)

    def test_participates_in_compare(self, stream_graph):
        results = repro.compare_methods(
            stream_graph, ["koutis", "streaming"], seed=3
        )
        assert {result.method for result in results} == {"koutis", "streaming"}


class TestStreamCLI:
    def write_batches(self, graph, path, batch_size):
        with open(path, "w") as handle:
            for edges, weights in edge_batches(graph, batch_size):
                handle.write(
                    json.dumps({"edges": edges.tolist(), "weights": weights.tolist()})
                    + "\n"
                )

    def test_stream_subcommand_end_to_end(self, stream_graph, tmp_path, capsys):
        from repro.cli import main
        from repro.graphs.io import read_edge_list

        batches = tmp_path / "batches.jsonl"
        output = tmp_path / "snapshot.txt"
        journal = tmp_path / "journal.jsonl"
        self.write_batches(stream_graph, batches, 400)
        code = main([
            "stream", str(batches), str(output),
            "--n", str(stream_graph.num_vertices),
            "--seed", "3", "--compaction-interval", "500",
            "--journal", str(journal), "--certify-resistances", "6",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "resistance certificate" in out
        written = read_edge_list(output)

        resumed_output = tmp_path / "resumed.txt"
        code = main(["stream", str(resumed_output), "--resume", "--journal", str(journal)])
        assert code == 0
        resumed = read_edge_list(resumed_output)
        assert np.array_equal(written.edge_weights, resumed.edge_weights)

    def test_stream_subcommand_validation(self, tmp_path):
        from repro.cli import main
        from repro.exceptions import ReproError

        batches = tmp_path / "bad.jsonl"
        batches.write_text('{"no_edges": []}\n')
        with pytest.raises(ReproError, match="--n"):
            main(["stream", str(batches), str(tmp_path / "out.txt")])
        with pytest.raises(ReproError, match="edges"):
            main(["stream", str(batches), str(tmp_path / "out.txt"), "--n", "5"])
