"""Tests for repro.analysis (spectral reports and experiment tables)."""

import numpy as np
import pytest

from repro.analysis.reporting import ExperimentTable, format_table
from repro.analysis.spectral import (
    approximation_report,
    quadratic_form_ratios,
    resistance_preservation,
)
from repro.core.config import SparsifierConfig
from repro.core.sample import parallel_sample
from repro.graphs import generators as gen


class TestQuadraticFormRatios:
    def test_identity_pair(self, small_er_graph):
        lo, hi = quadratic_form_ratios(small_er_graph, small_er_graph, seed=0)
        assert lo == pytest.approx(1.0)
        assert hi == pytest.approx(1.0)

    def test_scaled_pair(self, small_er_graph):
        lo, hi = quadratic_form_ratios(small_er_graph, small_er_graph.scaled(2.0), seed=1)
        assert lo == pytest.approx(2.0)
        assert hi == pytest.approx(2.0)

    def test_ratios_within_certificate(self, medium_er_graph):
        from repro.core.certificates import certify_approximation

        result = parallel_sample(
            medium_er_graph, config=SparsifierConfig.practical(bundle_t=2), seed=2
        )
        cert = certify_approximation(medium_er_graph, result.sparsifier)
        lo, hi = quadratic_form_ratios(medium_er_graph, result.sparsifier, seed=3)
        assert cert.lower - 1e-9 <= lo
        assert hi <= cert.upper + 1e-9

    def test_empty_denominator_reports_nan(self):
        """An edgeless original skips every probe: NaN, not a fake perfect score."""
        empty = gen.path_graph(5).select_edges(np.zeros(4, dtype=bool))
        bounds = quadratic_form_ratios(empty, empty, seed=0)
        lo, hi = bounds  # tuple-style unpacking still works
        assert np.isnan(lo) and np.isnan(hi)
        assert bounds.num_probes_used == 0

    def test_probe_count_surfaced(self, small_er_graph):
        bounds = quadratic_form_ratios(small_er_graph, small_er_graph, num_vectors=7, seed=0)
        assert bounds.num_probes_used == 7


class TestResistancePreservation:
    def test_identity_pair(self, small_er_graph):
        lo, hi = resistance_preservation(small_er_graph, small_er_graph, num_pairs=8, seed=0)
        assert lo == pytest.approx(1.0, abs=1e-6)
        assert hi == pytest.approx(1.0, abs=1e-6)

    def test_explicit_pairs(self, small_er_graph):
        lo, hi = resistance_preservation(
            small_er_graph, small_er_graph.scaled(2.0), pairs=[(0, 5), (1, 7)]
        )
        # Doubling weights halves resistances.
        assert lo == pytest.approx(0.5, abs=1e-6)
        assert hi == pytest.approx(0.5, abs=1e-6)

    def test_empty_pairs_report_nan(self, small_er_graph):
        bounds = resistance_preservation(small_er_graph, small_er_graph, pairs=[])
        assert np.isnan(bounds.minimum) and np.isnan(bounds.maximum)
        assert bounds.num_probes_used == 0

    def test_small_components_get_full_probe_count(self):
        """Direct in-component sampling: many tiny components cannot starve probes."""
        from repro.graphs.operations import disjoint_union

        triangle = gen.cycle_graph(3)
        g = triangle
        for _ in range(9):
            g = disjoint_union(g, triangle)  # 10 triangles, n = 30
        bounds = resistance_preservation(g, g, num_pairs=32, seed=0)
        assert bounds.num_probes_used == 32
        assert bounds.minimum == pytest.approx(1.0, abs=1e-6)
        assert bounds.maximum == pytest.approx(1.0, abs=1e-6)

    def test_sparsifier_disconnection_is_infinite(self, small_er_graph):
        """A probe pair split apart by the 'sparsifier' shows up as an inf ratio."""
        empty = small_er_graph.select_edges(np.zeros(small_er_graph.num_edges, dtype=bool))
        bounds = resistance_preservation(small_er_graph, empty, num_pairs=4, seed=1)
        assert np.isinf(bounds.maximum)
        assert bounds.num_probes_used == 4


class TestApproximationReport:
    def test_full_report(self, medium_er_graph):
        result = parallel_sample(
            medium_er_graph, config=SparsifierConfig.practical(bundle_t=2), seed=4
        )
        report = approximation_report(medium_er_graph, result.sparsifier, seed=5)
        assert report.edges_original == medium_er_graph.num_edges
        assert report.edges_sparsifier == result.sparsifier.num_edges
        assert report.connectivity_preserved
        assert report.num_probes_used == 32
        assert report.num_resistance_pairs_used == 16
        assert report.edge_reduction >= 1.0
        assert report.certificate.lower <= report.quadratic_ratio_min + 1e-9
        assert report.quadratic_ratio_max <= report.certificate.upper + 1e-9
        # Resistance ratios of a (1 +- eps)-ish sparsifier stay within the inverse band.
        assert report.resistance_ratio_min > 0.2
        assert report.resistance_ratio_max < 5.0

    def test_report_without_resistances(self, small_er_graph):
        report = approximation_report(
            small_er_graph, small_er_graph, include_resistances=False
        )
        assert np.isnan(report.resistance_ratio_min)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "long_column"], [[1, 2.5], [10, 0.00001]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long_column" in lines[1]
        assert len(lines) == 5

    def test_format_value_types(self):
        text = format_table(["x"], [[True], [float("nan")], [0.0], [123456789.0]])
        assert "yes" in text
        assert "nan" in text

    def test_experiment_table_add_and_render(self):
        table = ExperimentTable("E1", ["n", "edges"])
        table.add_row(n=10, edges=20)
        table.add_row(n=20, edges=50)
        rendered = table.render()
        assert "Experiment E1" in rendered
        assert len(table.rows) == 2

    def test_experiment_table_missing_column(self):
        table = ExperimentTable("E1", ["n", "edges"])
        with pytest.raises(ValueError):
            table.add_row(n=10)

    def test_experiment_table_csv_and_dicts(self, tmp_path):
        table = ExperimentTable("E2", ["x", "y"])
        table.add_row(x=1, y=2)
        path = tmp_path / "table.csv"
        table.to_csv(path)
        assert path.read_text().startswith("x,y")
        assert table.as_dicts() == [{"x": 1, "y": 2}]
