"""Generate golden spanner/bundle outputs for the vectorization refactor.

Freezes the exact edge selections of the pre-vectorization (seed)
implementation — preserved verbatim in ``repro.spanners._reference`` —
so the golden tests can detect any behavioural drift of the vectorized
implementation.  Regeneration therefore always re-derives from the seed
code, never from the optimized code under test:

    PYTHONPATH=src python tests/golden/generate_goldens.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.graphs import generators as gen
from repro.graphs.generators import banded_graph
from repro.spanners._reference import (
    reference_baswana_sen_spanner,
    reference_t_bundle_spanner,
)

OUT = Path(__file__).resolve().parent / "spanner_goldens.json"


def cases() -> list:
    """(name, graph, seed, k, t) combinations — ≥6 scenario-diverse combos."""
    return [
        ("banded-120-b6", banded_graph(120, 6), 11, None, 4),
        ("grid-10x10", gen.grid_graph(10, 10), 7, 3, 3),
        ("powerlaw-150-a3", gen.barabasi_albert_graph(150, 3, seed=5), 23, None, 4),
        (
            "er-100-weighted",
            gen.erdos_renyi_graph(
                100, 0.15, seed=3, weight_range=(0.5, 4.0), ensure_connected=True
            ),
            42,
            4,
            3,
        ),
        ("cycle-50", gen.cycle_graph(50), 2, None, 2),
        ("er-80-dense", gen.erdos_renyi_graph(80, 0.3, seed=9, ensure_connected=True), 17, 2, 5),
        ("banded-200-b4-k5", banded_graph(200, 4), 101, 5, 8),
    ]


def main() -> None:
    goldens = {}
    for name, graph, seed, k, t in cases():
        spanner = reference_baswana_sen_spanner(graph, k=k, seed=seed)
        bundle = reference_t_bundle_spanner(graph, t=t, k=k, seed=seed)
        goldens[name] = {
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "seed": seed,
            "k": k,
            "t": t,
            "spanner_edge_indices": spanner.edge_indices.tolist(),
            "bundle_edge_indices": bundle.edge_indices.tolist(),
            "bundle_components": [c.tolist() for c in bundle.component_edge_indices],
        }
    OUT.write_text(json.dumps(goldens, indent=1) + "\n")
    print(f"wrote {OUT} ({len(goldens)} cases)")


if __name__ == "__main__":
    main()
