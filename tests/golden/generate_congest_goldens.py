"""Generate golden outputs for the columnar CONGEST engine parity tests.

Freezes, per (graph, seed) case, what the *reference* per-node simulator
(:mod:`repro.parallel.distributed` running
``distributed_spanner._BaswanaSenProgram``) produces for the distributed
Baswana–Sen protocol:

* the selected spanner edge indices (into the coalesced graph),
* the exact ``DistributedCost`` triple (rounds, messages, max words),
* the per-round message histogram.

The parity tests compare **both** engines against these frozen values,
so a behavioural drift of either one is caught even if the two engines
drift together.  Regeneration always re-derives from the reference
engine, never from the columnar engine under test:

    PYTHONPATH=src python tests/golden/generate_congest_goldens.py
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.spanners.distributed_spanner import distributed_baswana_sen_spanner

OUT = Path(__file__).resolve().parent / "congest_goldens.json"


def disconnected_graph() -> Graph:
    """Two components of different shapes plus isolated vertices."""
    grid = gen.grid_graph(5, 5)
    cyc = gen.cycle_graph(7)
    u = np.concatenate([grid.edge_u, cyc.edge_u + 25])
    v = np.concatenate([grid.edge_v, cyc.edge_v + 25])
    return Graph(40, u, v)  # vertices 32..39 are isolated


def cases() -> list:
    """(name, graph, seed, k) combinations spanning the parity scenarios."""
    return [
        ("banded-96-b6", gen.banded_graph(96, 6), 11, None),
        ("powerlaw-120-a4", gen.barabasi_albert_graph(120, 4, seed=5), 23, None),
        ("grid-9x9", gen.grid_graph(9, 9), 7, 3),
        ("disconnected-40", disconnected_graph(), 3, None),
        (
            "er-80-weighted",
            gen.erdos_renyi_graph(80, 0.15, seed=3, weight_range=(0.5, 4.0), ensure_connected=True),
            42,
            4,
        ),
        ("cycle-33", gen.cycle_graph(33), 2, None),
    ]


def main() -> None:
    goldens = {}
    for name, graph, seed, k in cases():
        result = distributed_baswana_sen_spanner(graph, k=k, seed=seed, engine="reference")
        goldens[name] = {
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "seed": seed,
            "k": k,
            "edge_indices": result.edge_indices.tolist(),
            "rounds": result.cost.rounds,
            "messages": result.cost.messages,
            "max_message_words": result.cost.max_message_words,
            "completed": result.completed,
        }
    OUT.write_text(json.dumps(goldens, indent=1) + "\n")
    print(f"wrote {OUT} ({len(goldens)} cases)")


if __name__ == "__main__":
    main()
