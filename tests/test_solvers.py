"""Tests for the Peng–Spielman chain solver stack (repro.solvers)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.config import SparsifierConfig
from repro.exceptions import NotSDDError, SparsificationError
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.graphs.laplacian import is_laplacian
from repro.solvers.chain import (
    apply_chain,
    build_inverse_chain,
    chain_preconditioner,
    _two_hop_laplacian,
    _split_level,
)
from repro.solvers.peng_spielman import (
    baseline_cg_solve,
    baseline_jacobi_cg_solve,
    estimate_condition_number,
    solve_laplacian,
    solve_sdd,
)

CONFIG = SparsifierConfig.practical(bundle_t=1)


def _rhs_for(graph: Graph, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    b = rng.standard_normal(graph.num_vertices)
    return b - b.mean()


class TestTwoHopReduction:
    def test_two_hop_is_laplacian(self, grid_graph_8x8):
        level = _split_level(grid_graph_8x8.laplacian())
        two_hop = _two_hop_laplacian(level)
        assert is_laplacian(two_hop, tol=1e-8)

    def test_two_hop_preserves_null_space(self, small_er_graph):
        level = _split_level(small_er_graph.laplacian())
        two_hop = _two_hop_laplacian(level)
        ones = np.ones(small_er_graph.num_vertices)
        assert np.allclose(two_hop @ ones, 0.0, atol=1e-8)

    def test_two_hop_positive_semidefinite(self, grid_graph_8x8):
        level = _split_level(grid_graph_8x8.laplacian())
        two_hop = _two_hop_laplacian(level).toarray()
        eigenvalues = np.linalg.eigvalsh(0.5 * (two_hop + two_hop.T))
        assert eigenvalues.min() >= -1e-8


class TestChainConstruction:
    def test_chain_has_levels(self, grid_graph_8x8):
        chain = build_inverse_chain(grid_graph_8x8, config=CONFIG, seed=0)
        assert chain.depth >= 1
        assert chain.total_nnz >= grid_graph_8x8.laplacian().nnz

    def test_chain_levels_are_laplacians(self, grid_graph_8x8):
        chain = build_inverse_chain(grid_graph_8x8, config=CONFIG, seed=1)
        for level in chain:
            assert is_laplacian(level.laplacian, tol=1e-6)

    def test_chain_from_laplacian_matrix(self, grid_graph_8x8):
        chain = build_inverse_chain(grid_graph_8x8.laplacian(), config=CONFIG, seed=2)
        assert chain.depth >= 1

    def test_chain_rejects_non_laplacian(self):
        with pytest.raises(SparsificationError):
            build_inverse_chain(sp.identity(10, format="csr"), config=CONFIG)

    def test_sparsified_chain_smaller_than_unsparsified(self):
        g = gen.erdos_renyi_graph(150, 0.15, seed=3, ensure_connected=True)
        sparsified = build_inverse_chain(g, config=CONFIG, sparsify=True, seed=4, max_levels=4)
        plain = build_inverse_chain(g, config=CONFIG, sparsify=False, seed=4, max_levels=4)
        assert sparsified.total_nnz <= plain.total_nnz

    def test_max_levels_respected(self, grid_graph_8x8):
        chain = build_inverse_chain(grid_graph_8x8, config=CONFIG, max_levels=2, seed=5)
        assert chain.depth <= 2

    def test_level_bookkeeping(self):
        g = gen.erdos_renyi_graph(100, 0.15, seed=6, ensure_connected=True)
        chain = build_inverse_chain(g, config=CONFIG, seed=7, max_levels=3)
        assert not chain.levels[0].sparsified
        for level in chain.levels[1:]:
            if level.sparsified:
                assert level.edges_after_sparsify <= level.edges_before_sparsify


class TestChainApplication:
    def test_exact_chain_is_accurate_inverse(self, grid_graph_8x8):
        """Without per-level sparsification the chain is a near-exact inverse
        (validating the Peng–Spielman identity and the recursion plumbing)."""
        chain = build_inverse_chain(grid_graph_8x8, config=CONFIG, seed=0, sparsify=False)
        lap = grid_graph_8x8.laplacian()
        b = _rhs_for(grid_graph_8x8)
        x = apply_chain(chain, b)
        residual = np.linalg.norm(lap @ x - b) / np.linalg.norm(b)
        assert residual < 0.2

    def test_sparsified_chain_trades_accuracy_for_size(self, grid_graph_8x8):
        """Per-level sparsification keeps the chain small; accuracy per application
        drops but stays bounded (it is recovered by the outer PCG iteration)."""
        exact = build_inverse_chain(grid_graph_8x8, config=CONFIG, seed=0, sparsify=False)
        sparse = build_inverse_chain(grid_graph_8x8, config=CONFIG, seed=0, sparsify=True)
        # Without sparsification the levels densify (the "M~ can be too dense"
        # problem); with it every level stays near the input size.
        assert max(level.nnz for level in sparse) < max(level.nnz for level in exact)
        lap = grid_graph_8x8.laplacian()
        b = _rhs_for(grid_graph_8x8)
        x = apply_chain(sparse, b)
        residual = np.linalg.norm(lap @ x - b) / np.linalg.norm(b)
        assert np.isfinite(residual)
        assert residual < 20.0

    def test_apply_chain_output_mean_zero(self, grid_graph_8x8):
        chain = build_inverse_chain(grid_graph_8x8, config=CONFIG, seed=1)
        x = apply_chain(chain, _rhs_for(grid_graph_8x8, 3))
        assert abs(x.mean()) < 1e-9

    def test_apply_chain_length_checked(self, grid_graph_8x8):
        chain = build_inverse_chain(grid_graph_8x8, config=CONFIG, seed=2)
        with pytest.raises(ValueError):
            apply_chain(chain, np.ones(7))

    def test_preconditioner_is_roughly_linear(self, grid_graph_8x8):
        """PCG assumes a fixed linear preconditioner; check additivity numerically."""
        chain = build_inverse_chain(grid_graph_8x8, config=CONFIG, seed=3)
        precond = chain_preconditioner(chain)
        a = _rhs_for(grid_graph_8x8, 1)
        b = _rhs_for(grid_graph_8x8, 2)
        combined = precond(a + b)
        separate = precond(a) + precond(b)
        assert np.allclose(combined, separate, atol=1e-8)


class TestSolveLaplacian:
    def test_solution_correct_grid(self, grid_graph_8x8):
        b = _rhs_for(grid_graph_8x8)
        report = solve_laplacian(grid_graph_8x8, b, tol=1e-8, config=CONFIG, seed=0)
        lap = grid_graph_8x8.laplacian()
        assert report.result.converged
        assert np.linalg.norm(lap @ report.x - b) <= 1e-6 * np.linalg.norm(b)

    def test_solution_correct_dense_er(self):
        g = gen.erdos_renyi_graph(150, 0.2, seed=1, ensure_connected=True)
        b = _rhs_for(g, 2)
        report = solve_laplacian(g, b, tol=1e-8, config=CONFIG, seed=3)
        assert report.result.converged
        assert np.linalg.norm(g.laplacian() @ report.x - b) <= 1e-6 * np.linalg.norm(b)

    def test_preconditioned_beats_plain_cg_iterations(self):
        """The chain preconditioner should cut the iteration count on a grid
        (grids are moderately ill-conditioned, where preconditioning pays off)."""
        g = gen.grid_graph(20, 20)
        b = _rhs_for(g, 5)
        plain = baseline_cg_solve(g, b, tol=1e-8)
        chain = solve_laplacian(g, b, tol=1e-8, config=CONFIG, seed=6)
        assert chain.result.converged
        assert chain.result.iterations < plain.iterations

    def test_work_model_populated(self, grid_graph_8x8):
        report = solve_laplacian(grid_graph_8x8, _rhs_for(grid_graph_8x8), config=CONFIG, seed=7)
        assert report.work_model is not None
        assert report.work_model.chain_depth == report.chain.depth
        assert report.work_model.outer_iterations == report.result.iterations
        assert report.work_model.solve_work > 0
        assert "chain depth" in report.work_model.summary()

    def test_chain_reuse(self, grid_graph_8x8):
        b = _rhs_for(grid_graph_8x8)
        first = solve_laplacian(grid_graph_8x8, b, config=CONFIG, seed=8)
        second = solve_laplacian(grid_graph_8x8, b, config=CONFIG, chain=first.chain)
        assert second.result.converged
        assert second.chain is first.chain

    def test_condition_estimate_positive(self, grid_graph_8x8):
        assert estimate_condition_number(grid_graph_8x8) > 1.0

    def test_jacobi_baseline_converges(self, grid_graph_8x8):
        result = baseline_jacobi_cg_solve(grid_graph_8x8, _rhs_for(grid_graph_8x8), tol=1e-8)
        assert result.converged


class TestSolveSDD:
    def test_strictly_dominant_system(self):
        rng = np.random.default_rng(0)
        n = 40
        off = rng.uniform(-1.0, 0.0, size=(n, n))
        off = 0.5 * (off + off.T)
        np.fill_diagonal(off, 0.0)
        mat = np.diag(np.abs(off).sum(axis=1) + rng.uniform(0.5, 1.5, n)) + off
        x_true = rng.standard_normal(n)
        b = mat @ x_true
        report = solve_sdd(mat, b, tol=1e-10, config=CONFIG, seed=1)
        assert np.allclose(report.x, x_true, atol=1e-5)

    def test_mixed_sign_offdiagonals(self):
        rng = np.random.default_rng(3)
        n = 30
        off = rng.uniform(-1.0, 1.0, size=(n, n))
        off = 0.5 * (off + off.T)
        np.fill_diagonal(off, 0.0)
        mat = np.diag(np.abs(off).sum(axis=1) + 1.0) + off
        x_true = rng.standard_normal(n)
        report = solve_sdd(mat, mat @ x_true, tol=1e-10, config=CONFIG, seed=4)
        assert np.allclose(report.x, x_true, atol=1e-5)

    def test_rejects_non_sdd(self):
        with pytest.raises(NotSDDError):
            solve_sdd(np.array([[1.0, -3.0], [-3.0, 1.0]]), np.ones(2))

    def test_report_metrics_present(self):
        rng = np.random.default_rng(5)
        n = 25
        off = -np.abs(rng.uniform(0, 1, size=(n, n)))
        off = 0.5 * (off + off.T)
        np.fill_diagonal(off, 0.0)
        mat = np.diag(np.abs(off).sum(axis=1) + 1.0) + off
        report = solve_sdd(mat, rng.standard_normal(n), config=CONFIG, seed=6)
        assert report.condition_estimate >= 1.0
        assert report.result.iterations > 0
