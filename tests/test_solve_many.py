"""Parity tests for the blocked multi-RHS solver and its consumers.

``laplacian_solve_many`` is pinned against per-column ``laplacian_solve``
and the dense-pseudoinverse path on small graphs, across every workload
the certification layer routes through it: explicit pairs, all-edges /
leverage scores, and the JL sketch (same sign matrix on both sides).
Edge cases: zero RHS columns, disconnected graphs, sparse RHS input, and
chunking invariance.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import ConvergenceError
from repro.graphs import generators as gen
from repro.graphs.connectivity import connected_components, sample_component_pairs
from repro.graphs.graph import Graph
from repro.graphs.operations import disjoint_union
from repro.linalg.cg import laplacian_solve, laplacian_solve_many
from repro.linalg.pseudoinverse import laplacian_pseudoinverse
from repro.resistance._reference import (
    looped_approximate_resistances,
    looped_resistances_all_edges,
    looped_resistances_of_pairs,
)
from repro.resistance.approx import (
    approximate_effective_resistances,
    approximate_effective_resistances_detailed,
    jl_direction_count,
)
from repro.resistance.exact import (
    effective_resistances_all_edges,
    effective_resistances_of_pairs,
    leverage_scores,
)


class TestLaplacianSolveMany:
    def test_matches_per_column_solve(self, small_er_graph):
        lap = small_er_graph.laplacian()
        rng = np.random.default_rng(0)
        rhs = rng.standard_normal((small_er_graph.num_vertices, 9))
        rhs -= rhs.mean(axis=0)
        batch = laplacian_solve_many(lap, rhs, tol=1e-10, block_size=4)
        assert batch.all_converged
        assert batch.num_blocks == 3
        for j in range(rhs.shape[1]):
            single = laplacian_solve(lap, rhs[:, j], tol=1e-10)
            assert np.allclose(batch.x[:, j], single.x, atol=1e-7)

    def test_matches_pseudoinverse(self, weighted_er_graph):
        lap = weighted_er_graph.laplacian()
        pinv = laplacian_pseudoinverse(lap)
        rng = np.random.default_rng(1)
        rhs = rng.standard_normal((weighted_er_graph.num_vertices, 5))
        rhs -= rhs.mean(axis=0)
        batch = laplacian_solve_many(lap, rhs, tol=1e-11)
        assert np.allclose(batch.x, pinv @ rhs, atol=1e-6)

    def test_zero_columns_converge_immediately(self, small_er_graph):
        lap = small_er_graph.laplacian()
        rhs = np.zeros((small_er_graph.num_vertices, 3))
        rhs[:, 1] = np.random.default_rng(2).standard_normal(small_er_graph.num_vertices)
        rhs[:, 1] -= rhs[:, 1].mean()
        batch = laplacian_solve_many(lap, rhs, tol=1e-10)
        assert batch.all_converged
        assert batch.iterations[0] == 0 and batch.iterations[2] == 0
        assert np.all(batch.x[:, 0] == 0.0) and np.all(batch.x[:, 2] == 0.0)
        assert batch.iterations[1] > 0

    def test_block_size_does_not_change_solutions(self, small_er_graph):
        lap = small_er_graph.laplacian()
        rng = np.random.default_rng(3)
        rhs = rng.standard_normal((small_er_graph.num_vertices, 10))
        rhs -= rhs.mean(axis=0)
        a = laplacian_solve_many(lap, rhs, tol=1e-11, block_size=2).x
        b = laplacian_solve_many(lap, rhs, tol=1e-11, block_size=10).x
        assert np.allclose(a, b, atol=1e-7)

    def test_sparse_rhs(self, small_er_graph):
        lap = small_er_graph.laplacian()
        n = small_er_graph.num_vertices
        dense = np.zeros((n, 4))
        dense[0, 0] = 1.0
        dense[5, 0] = -1.0
        dense[2, 1] = 1.0
        dense[9, 1] = -1.0
        dense[1, 3] = 1.0
        dense[7, 3] = -1.0
        sparse = sp.csc_matrix(dense)
        a = laplacian_solve_many(lap, sparse, tol=1e-10, block_size=3)
        b = laplacian_solve_many(lap, dense, tol=1e-10, block_size=3)
        assert np.allclose(a.x, b.x, atol=1e-9)
        assert a.converged[2]  # the zero column

    def test_disconnected_graph_pair_rhs(self):
        part = gen.erdos_renyi_graph(25, 0.25, seed=4, ensure_connected=True)
        graph = disjoint_union(part, part)
        lap = graph.laplacian()
        pinv = laplacian_pseudoinverse(lap)
        rhs = np.zeros((graph.num_vertices, 2))
        rhs[1, 0], rhs[8, 0] = 1.0, -1.0     # within component 0
        rhs[30, 1], rhs[44, 1] = 1.0, -1.0   # within component 1
        batch = laplacian_solve_many(lap, rhs, tol=1e-11)
        assert batch.all_converged
        expected = pinv @ rhs
        # Solutions agree up to per-component constants; compare differences.
        assert batch.x[1, 0] - batch.x[8, 0] == pytest.approx(
            expected[1, 0] - expected[8, 0], abs=1e-7
        )
        assert batch.x[30, 1] - batch.x[44, 1] == pytest.approx(
            expected[30, 1] - expected[44, 1], abs=1e-7
        )

    def test_work_accounting(self, small_er_graph):
        lap = small_er_graph.laplacian().tocsr()
        rng = np.random.default_rng(5)
        rhs = rng.standard_normal((small_er_graph.num_vertices, 6))
        rhs -= rhs.mean(axis=0)
        batch = laplacian_solve_many(lap, rhs, tol=1e-8)
        assert batch.matvecs > 0
        assert batch.work == pytest.approx(lap.nnz * batch.matvecs)
        assert batch.num_columns == 6

    def test_raise_on_failure(self, small_er_graph):
        lap = small_er_graph.laplacian()
        rng = np.random.default_rng(6)
        rhs = rng.standard_normal((small_er_graph.num_vertices, 2))
        rhs -= rhs.mean(axis=0)
        with pytest.raises(ConvergenceError):
            laplacian_solve_many(lap, rhs, tol=1e-14, max_iterations=2,
                                 raise_on_failure=True)

    def test_rejects_bad_shapes(self, small_er_graph):
        lap = small_er_graph.laplacian()
        with pytest.raises(ValueError):
            laplacian_solve_many(lap, np.zeros((3, 2)))
        with pytest.raises(ValueError):
            laplacian_solve_many(
                lap, np.zeros((small_er_graph.num_vertices, 2)), block_size=0
            )


class TestBlockedResistanceParity:
    def test_pairs_match_looped_and_pinv(self, weighted_er_graph):
        pairs = np.array([(0, 5), (3, 17), (10, 40), (5, 0), (3, 17), (2, 60)])
        blocked = effective_resistances_of_pairs(weighted_er_graph, pairs, method="solve")
        looped = looped_resistances_of_pairs(weighted_er_graph, pairs)
        by_pinv = effective_resistances_of_pairs(weighted_er_graph, pairs, method="pinv")
        assert np.allclose(blocked, looped, rtol=1e-6)
        assert np.allclose(blocked, by_pinv, rtol=1e-6)
        # Duplicated / reversed pairs share one solve and one value.
        assert blocked[0] == blocked[3]
        assert blocked[1] == blocked[4]

    def test_all_edges_match_looped_and_pinv(self, small_er_graph):
        blocked = effective_resistances_all_edges(small_er_graph, method="solve")
        looped = looped_resistances_all_edges(small_er_graph)
        by_pinv = effective_resistances_all_edges(small_er_graph, method="pinv")
        assert np.allclose(blocked, looped, rtol=1e-6)
        assert np.allclose(blocked, by_pinv, rtol=1e-6)

    def test_leverage_scores_solve_path(self, weighted_er_graph):
        by_solve = leverage_scores(weighted_er_graph, method="solve")
        by_pinv = leverage_scores(weighted_er_graph, method="pinv")
        assert np.allclose(by_solve, by_pinv, rtol=1e-6)
        assert by_solve.sum() == pytest.approx(
            weighted_er_graph.num_vertices - 1, rel=1e-6
        )

    def test_disconnected_graph_pairs(self, triangle_graph):
        graph = disjoint_union(triangle_graph, triangle_graph)
        pairs = [(0, 1), (3, 5), (4, 5)]
        blocked = effective_resistances_of_pairs(graph, pairs, method="solve")
        by_pinv = effective_resistances_of_pairs(graph, pairs, method="pinv")
        assert np.allclose(blocked, by_pinv, rtol=1e-6)

    def test_pair_path_chunks_match_single_block(self):
        """Pair-indicator chunk loop: tiny block_size must not change results.

        A disconnected graph forces the pair-indicator path (the vertex
        path requires connectivity), and block_size=2 over 8 pairs drives
        the chunked solve-and-discard loop across several chunks.
        """
        part = gen.erdos_renyi_graph(20, 0.3, seed=8, ensure_connected=True)
        graph = disjoint_union(part, part)
        rng = np.random.default_rng(9)
        a = rng.integers(0, 20, size=16).reshape(8, 2)
        a = a[a[:, 0] != a[:, 1]]
        pairs = np.concatenate([a, a + 20])  # pairs in both components
        chunked = effective_resistances_of_pairs(
            graph, pairs, method="solve", block_size=2
        )
        whole = effective_resistances_of_pairs(
            graph, pairs, method="solve", block_size=64
        )
        by_pinv = effective_resistances_of_pairs(graph, pairs, method="pinv")
        assert np.allclose(chunked, whole, rtol=1e-8)
        assert np.allclose(chunked, by_pinv, rtol=1e-6)

    def test_tree_leverage_scores_all_one(self):
        tree = gen.path_graph(12)
        assert np.allclose(leverage_scores(tree, method="solve"), 1.0, atol=1e-7)

    def test_all_edges_with_isolated_vertex(self):
        """A stray isolated vertex must not break (or bypass) the vertex path."""
        core = gen.erdos_renyi_graph(40, 0.3, seed=13, ensure_connected=True)
        graph = Graph(
            core.num_vertices + 1, core.edge_u, core.edge_v, core.edge_weights
        )
        by_solve = effective_resistances_all_edges(graph, method="solve")
        by_pinv = effective_resistances_all_edges(graph, method="pinv")
        assert np.allclose(by_solve, by_pinv, rtol=1e-6)

    def test_all_edges_disconnected_dense_components(self):
        """Per-component vertex path on a multi-component graph matches pinv."""
        a = gen.erdos_renyi_graph(30, 0.4, seed=14, ensure_connected=True)
        b = gen.erdos_renyi_graph(25, 0.4, seed=15, ensure_connected=True)
        graph = disjoint_union(a, b)  # each component has m >> n
        by_solve = effective_resistances_all_edges(graph, method="solve")
        by_pinv = effective_resistances_all_edges(graph, method="pinv")
        assert np.allclose(by_solve, by_pinv, rtol=1e-6)
        scores = leverage_scores(graph, method="solve")
        # Leverage scores sum to n - c (two components here).
        assert scores.sum() == pytest.approx(graph.num_vertices - 2, rel=1e-6)


class TestBlockedJLSketch:
    def test_same_signs_match_per_column_solves(self, small_er_graph):
        """Feed the blocked RHS construction through per-column CG: identical."""
        g = small_er_graph
        n, m = g.num_vertices, g.num_edges
        k = 6
        rng = np.random.default_rng(11)
        signs = rng.integers(0, 2, size=(k, m), dtype=np.int8) * 2 - 1
        sqrt_w = np.sqrt(g.edge_weights)
        lap = g.laplacian()
        scale = 1.0 / np.sqrt(k)
        expected = np.zeros(m)
        rhs = np.zeros((n, k))
        for j in range(k):
            contrib = signs[j] * scale * sqrt_w
            np.add.at(rhs[:, j], g.edge_u, contrib)
            np.add.at(rhs[:, j], g.edge_v, -contrib)
            z = laplacian_solve(lap, rhs[:, j], tol=1e-10).x
            diff = z[g.edge_u] - z[g.edge_v]
            expected += diff * diff
        batch = laplacian_solve_many(lap, rhs, tol=1e-10, block_size=4)
        diff = batch.x[g.edge_u, :] - batch.x[g.edge_v, :]
        blocked = np.einsum("ij,ij->i", diff, diff)
        assert np.allclose(blocked, expected, rtol=1e-6)

    def test_fixed_seed_reproducible_across_block_sizes(self, small_er_graph):
        with pytest.warns(UserWarning):
            a = approximate_effective_resistances(
                small_er_graph, num_directions=16, seed=42, block_size=4
            )
            b = approximate_effective_resistances(
                small_er_graph, num_directions=16, seed=42, block_size=16
            )
        assert np.allclose(a, b)

    def test_no_direction_cap_on_sparse_graphs(self):
        """A path graph has m = n - 1 << 24 ln n / delta^2: no silent cap."""
        path = gen.path_graph(40)
        detailed = approximate_effective_resistances_detailed(path, delta=0.5, seed=0)
        assert detailed.num_directions == jl_direction_count(40, 0.5)
        assert detailed.num_directions > path.num_edges
        assert detailed.delta_target == 0.5
        assert detailed.delta_effective == pytest.approx(0.5, rel=0.05)
        # With enough directions the estimate is actually within tolerance.
        assert np.allclose(detailed.resistances, 1.0, rtol=0.6)

    def test_explicit_count_records_effective_delta(self, small_er_graph):
        with pytest.warns(UserWarning, match="guarantee"):
            detailed = approximate_effective_resistances_detailed(
                small_er_graph, num_directions=8, seed=3
            )
        assert detailed.delta_target is None
        assert detailed.delta_effective > 1.0
        assert detailed.num_directions == 8

    def test_statistical_agreement_with_looped(self, small_er_graph):
        exact = effective_resistances_all_edges(small_er_graph, method="pinv")
        with pytest.warns(UserWarning):
            blocked = approximate_effective_resistances(
                small_er_graph, num_directions=64, seed=9
            )
        looped = looped_approximate_resistances(small_er_graph, 64, seed=9)
        # Different sign draws, same estimator: both concentrate around exact.
        assert np.median(np.abs(blocked / exact - 1.0)) < 0.4
        assert np.median(np.abs(looped / exact - 1.0)) < 0.4


class TestUnconvergedWarning:
    def test_unconverged_columns_warn(self):
        from repro.linalg.cg import BatchSolveResult
        from repro.resistance.exact import _warn_if_unconverged

        fake = BatchSolveResult(
            x=np.zeros((4, 2)),
            converged=np.array([True, False]),
            iterations=np.array([3, 40]),
            residual_norms=np.array([1e-12, 0.3]),
        )
        with pytest.warns(UserWarning, match="missed tol"):
            _warn_if_unconverged(fake, 1e-10, "test")

    def test_converged_columns_silent(self, small_er_graph):
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            effective_resistances_all_edges(small_er_graph, method="solve")


class TestResistanceCertificate:
    def test_identity_holds_any_epsilon(self, small_er_graph):
        from repro.core.certificates import certify_resistances

        cert = certify_resistances(small_er_graph, small_er_graph, num_pairs=8, seed=0)
        assert cert.num_pairs_used == 8
        assert cert.holds(0.1)
        assert cert.epsilon_refuted_below == pytest.approx(0.0, abs=1e-6)

    def test_gross_upscaling_refuted_even_for_large_epsilon(self, small_er_graph):
        """The lower resistance bound binds for every epsilon, including >= 1."""
        from repro.core.certificates import certify_resistances

        inflated = small_er_graph.scaled(1e6)  # resistances shrink by 1e6
        cert = certify_resistances(small_er_graph, inflated, num_pairs=8, seed=1)
        assert cert.ratio_max < 1e-5
        assert not cert.holds(1.5)
        assert not cert.holds(0.5)
        assert cert.epsilon_refuted_below > 1.0

    def test_zero_probes_is_vacuous_not_refuted(self):
        from repro.core.certificates import certify_resistances

        singletons = Graph(6)  # no edges, all-singleton components
        cert = certify_resistances(singletons, singletons, num_pairs=8, seed=0)
        assert cert.num_pairs_used == 0
        assert np.isnan(cert.ratio_min)
        assert np.isnan(cert.epsilon_refuted_below)
        assert cert.holds(0.1)  # vacuously consistent, not refuted

    def test_disconnection_shows_as_infinite_and_fails(self, small_er_graph):
        from repro.core.certificates import certify_resistances

        empty = small_er_graph.select_edges(
            np.zeros(small_er_graph.num_edges, dtype=bool)
        )
        cert = certify_resistances(small_er_graph, empty, num_pairs=4, seed=2)
        assert np.isinf(cert.ratio_max)
        assert not cert.holds(2.0)
        assert cert.epsilon_refuted_below == pytest.approx(1.0)


class TestSampleComponentPairs:
    def test_exact_count_on_fragmented_graph(self):
        labels = np.repeat(np.arange(10), 3)  # 10 components of size 3
        rng = np.random.default_rng(0)
        pairs = sample_component_pairs(labels, 50, rng)
        assert pairs.shape == (50, 2)
        assert np.all(labels[pairs[:, 0]] == labels[pairs[:, 1]])
        assert np.all(pairs[:, 0] != pairs[:, 1])

    def test_all_singletons_returns_empty(self):
        labels = np.arange(8)
        pairs = sample_component_pairs(labels, 5, np.random.default_rng(0))
        assert pairs.shape == (0, 2)

    def test_weighted_by_pair_count(self):
        # One size-20 component and one size-2: the big one has C(20,2)=190
        # of the 191 pairs and should absorb almost every draw.
        labels = np.array([0] * 20 + [1] * 2)
        rng = np.random.default_rng(1)
        pairs = sample_component_pairs(labels, 400, rng)
        big = np.sum(labels[pairs[:, 0]] == 0)
        assert big > 350

    def test_matches_components_of_real_graph(self, triangle_graph):
        graph = disjoint_union(triangle_graph, triangle_graph)
        labels = connected_components(graph)
        pairs = sample_component_pairs(labels, 12, np.random.default_rng(2))
        assert pairs.shape == (12, 2)
        assert np.all(labels[pairs[:, 0]] == labels[pairs[:, 1]])


class TestChainPreconditionedBlockCG:
    """PR 6: the blocked solver with a Peng–Spielman chain preconditioner."""

    def _chain_setup(self, graph):
        from repro.solvers.chain import build_preconditioner_chain, chain_preconditioner
        from repro.solvers.work_model import chain_work_model

        chain = build_preconditioner_chain(graph, seed=0)
        return chain_preconditioner(chain), chain_work_model(chain).work_per_application

    def test_preconditioned_matches_plain_and_pinv(self, weighted_er_graph):
        lap = weighted_er_graph.laplacian()
        pre, work_per_app = self._chain_setup(weighted_er_graph)
        rng = np.random.default_rng(21)
        rhs = rng.standard_normal((weighted_er_graph.num_vertices, 7))
        rhs -= rhs.mean(axis=0)
        plain = laplacian_solve_many(lap, rhs, tol=1e-11)
        chained = laplacian_solve_many(
            lap, rhs, tol=1e-11, preconditioner=pre,
            precond_work_per_application=work_per_app,
        )
        pinv = laplacian_pseudoinverse(lap)
        assert chained.all_converged
        assert np.allclose(chained.x, plain.x, atol=1e-7)
        assert np.allclose(chained.x, pinv @ rhs, atol=1e-6)

    def test_block_size_invariance_with_preconditioner(self, small_er_graph):
        lap = small_er_graph.laplacian()
        pre, work_per_app = self._chain_setup(small_er_graph)
        rng = np.random.default_rng(22)
        rhs = rng.standard_normal((small_er_graph.num_vertices, 10))
        rhs -= rhs.mean(axis=0)
        a = laplacian_solve_many(lap, rhs, tol=1e-11, block_size=3,
                                 preconditioner=pre,
                                 precond_work_per_application=work_per_app)
        b = laplacian_solve_many(lap, rhs, tol=1e-11, block_size=10,
                                 preconditioner=pre,
                                 precond_work_per_application=work_per_app)
        assert np.allclose(a.x, b.x, atol=1e-7)
        # Per-block state is independent, so per-column effort is identical too.
        assert np.array_equal(a.iterations, b.iterations)
        assert a.precond_applications == b.precond_applications

    def test_work_strictly_counts_preconditioner_applications(self, small_er_graph):
        """Regression: BatchSolveResult.work must charge every z = M^-1 r."""
        lap = small_er_graph.laplacian().tocsr()
        pre, work_per_app = self._chain_setup(small_er_graph)
        assert work_per_app > 0
        rng = np.random.default_rng(23)
        rhs = rng.standard_normal((small_er_graph.num_vertices, 5))
        rhs -= rhs.mean(axis=0)
        batch = laplacian_solve_many(lap, rhs, tol=1e-9, preconditioner=pre,
                                     precond_work_per_application=work_per_app)
        assert batch.precond_applications > 0
        assert batch.work == pytest.approx(
            lap.nnz * batch.matvecs + work_per_app * batch.precond_applications
        )
        assert batch.work > lap.nnz * batch.matvecs  # strictly more than matvecs alone
        plain = laplacian_solve_many(lap, rhs, tol=1e-9)
        assert plain.precond_applications == 0
        assert plain.work == pytest.approx(lap.nnz * plain.matvecs)

    def test_compression_with_mixed_easy_hard_columns(self, small_er_graph):
        """Frozen-column compression must keep preconditioned state consistent.

        Eight of twelve columns are zero, so they freeze at iteration 0 and
        the live block is physically compressed on the first loop pass
        (the >= half-frozen rule) while the preconditioner is attached; the
        dense random columns must still land on the pseudoinverse solution.
        """
        g = small_er_graph
        n = g.num_vertices
        lap = g.laplacian()
        pre, work_per_app = self._chain_setup(g)
        rng = np.random.default_rng(24)
        rhs = np.zeros((n, 12))
        rhs[:, 8:] = rng.standard_normal((n, 4))  # hard: dense random
        rhs[:, 8:] -= rhs[:, 8:].mean(axis=0)
        batch = laplacian_solve_many(lap, rhs, tol=1e-11, block_size=12,
                                     preconditioner=pre,
                                     precond_work_per_application=work_per_app)
        assert batch.all_converged
        pinv = laplacian_pseudoinverse(lap)
        assert np.allclose(batch.x, pinv @ rhs, atol=1e-6)
        # The zero columns froze immediately (forcing the compression) and
        # stayed exactly zero; the hard ones did real work.
        assert np.all(batch.iterations[:8] == 0)
        assert np.all(batch.x[:, :8] == 0.0)
        assert np.all(batch.iterations[8:] > 0)

    def test_apply_chain_blocked_matches_columnwise(self, small_er_graph):
        from repro.solvers.chain import apply_chain, build_preconditioner_chain

        chain = build_preconditioner_chain(small_er_graph, seed=0)
        rng = np.random.default_rng(25)
        block = rng.standard_normal((small_er_graph.num_vertices, 6))
        blocked = apply_chain(chain, block)
        assert blocked.shape == block.shape
        for j in range(block.shape[1]):
            assert np.allclose(blocked[:, j], apply_chain(chain, block[:, j]),
                               atol=1e-12)
        with pytest.raises(ValueError):
            apply_chain(chain, np.zeros((3, 2, 1)))

    def test_validate_rejects_non_laplacian(self, small_er_graph):
        """Opt-in deflate contract check: deflation assumes a Laplacian."""
        bad = sp.identity(12, format="csr")  # SPD, but row sums are 1, not 0
        rhs = np.zeros((12, 2))
        with pytest.raises(ValueError, match="not a graph Laplacian"):
            laplacian_solve_many(bad, rhs, validate=True)
        laplacian_solve_many(bad, rhs)  # default: taken on faith (documented)
        lap = small_er_graph.laplacian()
        good_rhs = np.zeros((small_er_graph.num_vertices, 2))
        assert laplacian_solve_many(lap, good_rhs, validate=True).all_converged


class TestSolverKnobRouting:
    """solver="cg"|"chain"|"auto" through the resistance / certification layer."""

    def test_pairs_chain_matches_cg_and_pinv(self, weighted_er_graph):
        pairs = np.array([(0, 5), (3, 17), (10, 40), (2, 60)])
        by_cg = effective_resistances_of_pairs(
            weighted_er_graph, pairs, method="solve", solver="cg"
        )
        by_chain = effective_resistances_of_pairs(
            weighted_er_graph, pairs, method="solve", solver="chain"
        )
        by_pinv = effective_resistances_of_pairs(weighted_er_graph, pairs, method="pinv")
        assert np.allclose(by_chain, by_cg, rtol=1e-6)
        assert np.allclose(by_chain, by_pinv, rtol=1e-6)

    def test_all_edges_and_leverage_chain_parity(self, small_er_graph):
        by_chain = effective_resistances_all_edges(
            small_er_graph, method="solve", solver="chain"
        )
        by_pinv = effective_resistances_all_edges(small_er_graph, method="pinv")
        assert np.allclose(by_chain, by_pinv, rtol=1e-6)
        lev_chain = leverage_scores(small_er_graph, method="solve", solver="chain")
        lev_pinv = leverage_scores(small_er_graph, method="pinv")
        assert np.allclose(lev_chain, lev_pinv, rtol=1e-6)

    def test_jl_chain_same_seed_matches_cg(self, small_er_graph):
        """Same seed -> same sign matrix; only solver tolerance separates them."""
        with pytest.warns(UserWarning):
            by_cg = approximate_effective_resistances(
                small_er_graph, num_directions=16, seed=7, solver="cg",
                solver_tol=1e-10,
            )
            by_chain = approximate_effective_resistances(
                small_er_graph, num_directions=16, seed=7, solver="chain",
                solver_tol=1e-10,
            )
        assert np.allclose(by_chain, by_cg, rtol=1e-6)

    def test_disconnected_graph_chain_solver(self, triangle_graph):
        part = gen.erdos_renyi_graph(20, 0.3, seed=31, ensure_connected=True)
        graph = disjoint_union(part, disjoint_union(part, triangle_graph))
        pairs = [(0, 1), (21, 30), (41, 42)]
        by_chain = effective_resistances_of_pairs(
            graph, pairs, method="solve", solver="chain"
        )
        by_pinv = effective_resistances_of_pairs(graph, pairs, method="pinv")
        assert np.allclose(by_chain, by_pinv, rtol=1e-6)

    def test_solver_cg_is_bit_identical_to_default(self, weighted_er_graph):
        """solver="cg" must be operation-for-operation the PR 5 path."""
        pairs = np.array([(0, 5), (3, 17), (10, 40)])
        default = effective_resistances_of_pairs(weighted_er_graph, pairs, method="solve")
        explicit = effective_resistances_of_pairs(
            weighted_er_graph, pairs, method="solve", solver="cg"
        )
        assert np.array_equal(default, explicit)
        all_default = effective_resistances_all_edges(weighted_er_graph, method="solve")
        all_explicit = effective_resistances_all_edges(
            weighted_er_graph, method="solve", solver="cg"
        )
        assert np.array_equal(all_default, all_explicit)

    def test_chain_built_once_per_graph_across_chunks(self):
        """One certification run builds its chain exactly once (cache key hit)."""
        from repro.resistance.solver_select import ResistanceSolveStats

        graph = gen.erdos_renyi_graph(70, 0.15, seed=77, ensure_connected=True)
        stats = ResistanceSolveStats()
        with pytest.warns(UserWarning):
            approximate_effective_resistances_detailed(
                graph, num_directions=24, seed=1, solver="chain", block_size=4,
                stats=stats,
            )
        assert stats.solver == "chain"
        assert stats.solves > 1  # several chunks ...
        assert stats.chain_builds == 1  # ... one build
        assert stats.precond_applications > 0
        repeat = ResistanceSolveStats()
        with pytest.warns(UserWarning):
            approximate_effective_resistances_detailed(
                graph, num_directions=24, seed=1, solver="chain", block_size=4,
                stats=repeat,
            )
        assert repeat.chain_builds == 0  # cache hit: no new build

    def test_stats_accumulate_on_plain_path(self, small_er_graph):
        from repro.resistance.solver_select import ResistanceSolveStats

        stats = ResistanceSolveStats()
        effective_resistances_all_edges(
            small_er_graph, method="solve", solver="cg", stats=stats
        )
        assert stats.solver == "cg"
        assert stats.iterations_total > 0
        assert stats.matvecs > 0
        assert stats.precond_applications == 0
        assert stats.work > 0
        assert stats.iterations_mean > 0

    def test_invalid_solver_rejected(self, small_er_graph):
        with pytest.raises(ValueError, match="unknown solver"):
            effective_resistances_all_edges(
                small_er_graph, method="solve", solver="bogus"
            )

    def test_certify_resistances_threads_solver(self, small_er_graph):
        from repro.core.certificates import certify_resistances

        cert_cg = certify_resistances(
            small_er_graph, small_er_graph, num_pairs=6, seed=0, solver="cg"
        )
        cert_chain = certify_resistances(
            small_er_graph, small_er_graph, num_pairs=6, seed=0, solver="chain"
        )
        assert cert_chain.holds(0.1)
        assert cert_chain.epsilon_refuted_below == pytest.approx(
            cert_cg.epsilon_refuted_below, abs=1e-6
        )


class TestPengSpielmanBlockedDelegation:
    def test_2d_rhs_matches_per_column_solves(self, small_er_graph):
        from repro.core.config import SparsifierConfig
        from repro.solvers.peng_spielman import solve_laplacian

        config = SparsifierConfig.practical(bundle_t=1)
        rng = np.random.default_rng(33)
        rhs = rng.standard_normal((small_er_graph.num_vertices, 5))
        rhs -= rhs.mean(axis=0)
        report = solve_laplacian(small_er_graph, rhs, tol=1e-10, config=config, seed=2)
        assert report.batch is not None
        assert report.result.converged
        assert report.batch.precond_applications > 0
        assert report.result.work == pytest.approx(report.batch.work)
        for j in range(rhs.shape[1]):
            single = solve_laplacian(
                small_er_graph, rhs[:, j], tol=1e-10, chain=report.chain
            )
            assert single.batch is None
            a = report.x[:, j] - report.x[:, j].mean()
            b = single.x - single.x.mean()
            assert np.allclose(a, b, atol=1e-6)

    def test_3d_rhs_rejected(self, small_er_graph):
        from repro.solvers.peng_spielman import solve_laplacian

        with pytest.raises(ValueError, match="1-D or 2-D"):
            solve_laplacian(small_er_graph, np.zeros((4, 2, 2)))


class TestLambdaMinSaturationFloor:
    """The lambda_min estimator's resolution limit and the auto rule around it.

    60 power iterations cannot resolve a normalized spectral gap much
    below ~8e-3 (LAMBDA_MIN_SATURATION_FLOOR): the estimate converges to
    lambda_min from above at a rate governed by the gap itself, so
    genuinely ill-conditioned graphs all report ~the floor regardless of
    their true gap.  These tests pin the floor empirically and pin
    resolve_solver's "gap unknown" handling of floor-level estimates.
    """

    def test_path_graph_estimates_saturate_at_floor(self):
        """Paths with true gaps of 1e-4..1e-6 all report ~the floor."""
        from repro.solvers.chain import (
            LAMBDA_MIN_SATURATION_FLOOR,
            estimate_normalized_lambda_min,
        )

        for n in (400, 1000, 3000):
            graph = gen.path_graph(n)
            estimate = estimate_normalized_lambda_min(graph)
            true_gap = 2.0 * (1.0 - np.cos(np.pi / n))  # ~ (pi/n)^2
            assert true_gap < LAMBDA_MIN_SATURATION_FLOOR / 5
            assert (
                LAMBDA_MIN_SATURATION_FLOOR / 3
                <= estimate
                <= 3 * LAMBDA_MIN_SATURATION_FLOOR
            ), f"path n={n}: estimate {estimate} escaped the documented floor band"

    def test_floor_is_below_chain_threshold(self):
        """The floor must stay inside the "chain" band or auto could never warn."""
        from repro.resistance.solver_select import CHAIN_LAMBDA_THRESHOLD
        from repro.solvers.chain import LAMBDA_MIN_SATURATION_FLOOR

        assert LAMBDA_MIN_SATURATION_FLOOR < CHAIN_LAMBDA_THRESHOLD

    def test_auto_treats_floor_level_estimate_as_unknown(self, monkeypatch):
        """gap <= floor -> warn + plain-CG default instead of silently chain."""
        from repro.resistance.solver_select import resolve_solver
        from repro.solvers import chain as chain_module

        big = gen.banded_graph(5000, 3)
        monkeypatch.setattr(
            chain_module, "estimate_normalized_lambda_min", lambda g: 5e-3
        )
        with pytest.warns(RuntimeWarning, match="saturation floor"):
            assert resolve_solver("auto", big, 64) == "cg"
        # Exactly at the floor is still "unknown".
        monkeypatch.setattr(
            chain_module, "estimate_normalized_lambda_min", lambda g: 8e-3
        )
        with pytest.warns(RuntimeWarning, match="gap is unknown"):
            assert resolve_solver("auto", big, 64) == "cg"

    def test_auto_still_picks_sides_above_the_floor(self, monkeypatch):
        """Measurable estimates route exactly as before (no new warnings)."""
        import warnings

        from repro.resistance.solver_select import resolve_solver
        from repro.solvers import chain as chain_module

        big = gen.banded_graph(5000, 3)
        monkeypatch.setattr(
            chain_module, "estimate_normalized_lambda_min", lambda g: 0.01
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_solver("auto", big, 64) == "chain"
        monkeypatch.setattr(
            chain_module, "estimate_normalized_lambda_min", lambda g: 0.5
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_solver("auto", big, 64) == "cg"
