"""Crash-consistency torture tests for the durable streaming state store.

The contract under test (``repro/streaming/store.py`` + the harness in
``repro/testing/faults.py``):

* **Kill-point sweep** — for *every* filesystem mutation the store ever
  issues (journal appends, segment rotations, snapshot blob/manifest
  writes, renames, prunes, truncations, directory fsyncs), killing the
  process at exactly that point leaves a store from which ``recover()``
  rebuilds a state bit-identical to a clean run over the surviving batch
  prefix — or reports the loss explicitly.  Zero silent divergence, in
  all three crash modes (clean kill, torn write, bit-flipped write).
* **Torn-write fuzz** — truncating a journal at *every byte offset*
  yields either a bit-exact prefix replay or a clean refusal, for both
  the stream journal and the batch checkpoint journal.
* **Media corruption** — a flipped bit mid-journal is never silently
  replayed: strict readers refuse, the recovery ladder quarantines and
  accounts for the loss; a flipped bit in the newest snapshot makes the
  ladder fall back to the previous snapshot (whose journal suffix the
  store deliberately retained).
* **Bounded resume** — after a snapshot, recovery replays only the
  post-snapshot journal suffix, proven through the scan's read
  accounting, not timing.
* **Leveled retained state** — multi-level compaction is deterministic,
  bounds the per-level sizes it promises, and round-trips through
  snapshot/recover bit-exactly.

Run with ``-m durability`` to select only this file.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import sparsify_many
from repro.core.checkpoint import BatchJournal
from repro.exceptions import CheckpointError
from repro.graphs import generators as gen
from repro.streaming import (
    LEVEL_FANOUT,
    StreamingSparsifier,
    StreamJournal,
    StreamStateStore,
)
from repro.testing.faults import (
    CrashPointIO,
    SimulatedCrash,
    flip_bit,
    kill_point_sweep,
    truncate_file_at,
)

pytestmark = pytest.mark.durability


# --------------------------------------------------------------------- #
# Shared fixtures: a small deterministic stream and its clean-run states
# --------------------------------------------------------------------- #

SEED = 5
COMPACTION_INTERVAL = 30
SNAPSHOT_EVERY = 2
SEGMENT_BYTES = 300  # tiny: every couple of appends rotates a segment


@pytest.fixture(scope="module")
def torture_graph():
    return gen.erdos_renyi_graph(40, 0.2, seed=3, weight_range=(0.5, 2.0))


@pytest.fixture(scope="module")
def torture_batches(torture_graph):
    edges = np.column_stack([torture_graph.edge_u, torture_graph.edge_v])
    weights = torture_graph.edge_weights
    bounds = np.linspace(0, torture_graph.num_edges, 7).astype(int)
    return [
        (edges[lo:hi], weights[lo:hi])
        for lo, hi in zip(bounds[:-1], bounds[1:])
    ]


def state_fingerprint(stream):
    """Deterministic bit-exact state identity (wall-clock telemetry excluded)."""
    counters, arrays = stream._state_payload()
    counters = {k: v for k, v in counters.items() if k != "ingest_seconds"}
    return counters, {name: np.array(array) for name, array in arrays.items()}


def assert_same_state(actual, expected):
    assert actual[0] == expected[0]
    assert sorted(actual[1]) == sorted(expected[1])
    for name, array in expected[1].items():
        assert np.array_equal(actual[1][name], array), name


@pytest.fixture(scope="module")
def clean_references(torture_batches, torture_graph):
    """Fingerprint of a clean (storeless) run after each batch count."""
    stream = StreamingSparsifier(
        torture_graph.num_vertices, seed=SEED, compaction_interval=COMPACTION_INTERVAL
    )
    refs = {0: state_fingerprint(stream)}
    for edges, weights in torture_batches:
        stream.ingest(edges, weights)
        refs[stream.batches_ingested] = state_fingerprint(stream)
    return refs


# --------------------------------------------------------------------- #
# The tentpole guarantee: the kill-point sweep
# --------------------------------------------------------------------- #


class TestKillPointSweep:
    @pytest.mark.parametrize("mode", ["clean", "torn", "flip"])
    def test_every_crash_point_recovers_without_silent_divergence(
        self, mode, torture_graph, torture_batches, clean_references, tmp_path
    ):
        stores = iter(range(10**6))

        current = {}

        def workload(io: CrashPointIO):
            path = tmp_path / f"store-{mode}-{next(stores)}"
            current["path"] = path
            stream = StreamingSparsifier(
                torture_graph.num_vertices,
                seed=SEED,
                compaction_interval=COMPACTION_INTERVAL,
                store=path,
                snapshot_every=SNAPSHOT_EVERY,
                segment_bytes=SEGMENT_BYTES,
                io=io,
            )
            for edges, weights in torture_batches:
                stream.ingest(edges, weights)

        def verify(point: int) -> None:
            try:
                stream, report = StreamStateStore.recover(current["path"])
            except CheckpointError as exc:
                # Dying at the very first mutation leaves an empty store;
                # refusing it loudly is the correct (non-silent) outcome.
                assert "nothing to recover" in str(exc)
                return
            # Either the recovery is bit-exact or the loss is declared.
            assert report.bit_exact or report.batches_lost > 0
            # And the recovered state is ALWAYS a clean-run prefix: the
            # store never resurrects a state no uncrashed stream ever had.
            assert_same_state(
                state_fingerprint(stream),
                clean_references[stream.batches_ingested],
            )
            # The recovered stream is live: it can keep ingesting.
            assert stream._journal.next_index == stream.batches_ingested

        points = kill_point_sweep(workload, verify, mode=mode)
        assert points > 20  # the workload really has many write points

    def test_empty_store_refuses_recovery(self, tmp_path):
        with pytest.raises(CheckpointError, match="nothing to recover"):
            StreamStateStore.recover(tmp_path / "void")


# --------------------------------------------------------------------- #
# Satellite: torn-write fuzz at every byte offset, both journals
# --------------------------------------------------------------------- #


class TestTornWriteFuzz:
    def test_stream_journal_truncated_at_every_offset(self, tmp_path):
        journal_dir = tmp_path / "journal"
        stream = StreamingSparsifier(
            12, seed=0, compaction_interval=10**6, journal=journal_dir
        )
        rng = np.random.default_rng(1)
        reference = []
        for index in range(5):
            edges = rng.integers(0, 12, size=(4, 2))
            edges[:, 1] = (edges[:, 0] + 1 + edges[:, 1] % 10) % 12
            weights = rng.uniform(0.5, 2.0, size=4).round(3)
            stream.ingest(edges, weights)
            reference.append(index)
        _, replayed = StreamJournal.load(journal_dir)
        full = list(replayed)
        assert [batch[0] for batch in full] == reference
        segment = sorted(journal_dir.glob("segment-*.jsonl"))[-1]
        pristine = segment.read_bytes()
        for offset in range(len(pristine)):
            segment.write_bytes(pristine)
            truncate_file_at(segment, offset)
            try:
                _, batches = StreamJournal.load(journal_dir)
                got = list(batches)
            except CheckpointError:
                continue  # refused loudly: acceptable, never silent
            # Whatever survives is an exact prefix of the original batches.
            assert len(got) <= len(full)
            for actual, expected in zip(got, full):
                assert actual[0] == expected[0]
                for a, b in zip(actual[1:], expected[1:]):
                    assert np.array_equal(a, b)
        segment.write_bytes(pristine)

    def test_batch_journal_truncated_at_every_offset(self, tmp_path):
        graphs = [
            gen.erdos_renyi_graph(12, 0.4, seed=20 + i, ensure_connected=True)
            for i in range(3)
        ]
        journal = tmp_path / "batch.jsonl"
        full = sparsify_many(graphs, epsilon=0.5, seed=7, checkpoint=journal)
        reference = {
            i: (
                r.sparsifier.edge_u.tolist(),
                r.sparsifier.edge_v.tolist(),
                r.sparsifier.edge_weights.tolist(),
            )
            for i, r in enumerate(full.results)
        }
        pristine = journal.read_bytes()
        loader = BatchJournal(journal, epsilon=0.5, rho=4.0, num_jobs=len(graphs))
        for offset in range(len(pristine)):
            journal.write_bytes(pristine)
            truncate_file_at(journal, offset)
            try:
                completed = loader.load_completed(graphs)
            except CheckpointError:
                continue  # refused loudly: acceptable, never silent
            # Whatever resumes is bit-identical to the clean run's results.
            for index, result in completed.items():
                assert (
                    result.sparsifier.edge_u.tolist(),
                    result.sparsifier.edge_v.tolist(),
                    result.sparsifier.edge_weights.tolist(),
                ) == reference[index]
        journal.write_bytes(pristine)


# --------------------------------------------------------------------- #
# Media corruption: flipped bits are refused or quarantined, never replayed
# --------------------------------------------------------------------- #


def run_store_stream(path, torture_graph, torture_batches, **overrides):
    kwargs = dict(
        seed=SEED,
        compaction_interval=COMPACTION_INTERVAL,
        store=path,
        snapshot_every=SNAPSHOT_EVERY,
        segment_bytes=SEGMENT_BYTES,
    )
    kwargs.update(overrides)
    stream = StreamingSparsifier(torture_graph.num_vertices, **kwargs)
    for edges, weights in torture_batches:
        stream.ingest(edges, weights)
    return stream


class TestBitFlipCorruption:
    def test_flipped_journal_byte_is_quarantined_and_accounted(
        self, torture_graph, torture_batches, clean_references, tmp_path
    ):
        store = tmp_path / "store"
        run_store_stream(store, torture_graph, torture_batches)
        segments = sorted((store / "journal").glob("segment-*.jsonl"))
        assert len(segments) >= 2
        victim = segments[0]  # the oldest retained segment: mid-journal
        flip_bit(victim, victim.stat().st_size // 2)
        # The strict reader refuses to attach to corruption.
        with pytest.raises(CheckpointError):
            list(StreamJournal.iter_batches(store / "journal"))
        stream, report = StreamStateStore.recover(store)
        # The ladder either salvaged around the flip bit-exactly (the flip
        # may land in a segment the snapshot already covers) or declared
        # the loss; either way the flipped bytes were never replayed.
        assert report.bit_exact or report.batches_lost > 0
        assert_same_state(
            state_fingerprint(stream), clean_references[stream.batches_ingested]
        )
        if not report.bit_exact:
            assert list(store.rglob("*.quarantined*"))

    def test_flipped_snapshot_falls_back_to_previous_snapshot(
        self, torture_graph, torture_batches, clean_references, tmp_path
    ):
        store = tmp_path / "store"
        run_store_stream(store, torture_graph, torture_batches)
        snapshots = sorted((store / "snapshots").glob("snap-*.state"))
        assert len(snapshots) == 2  # keep_snapshots=2 retained both
        flip_bit(snapshots[-1], snapshots[-1].stat().st_size // 2)
        stream, report = StreamStateStore.recover(store)
        # Newest snapshot quarantined; the previous one restores and the
        # journal suffix the store retained for it replays the rest.
        assert report.snapshots_quarantined == 1
        assert report.snapshot_used is not None
        assert report.snapshot_used < len(torture_batches)
        assert report.bit_exact
        assert stream.batches_ingested == len(torture_batches)
        assert_same_state(
            state_fingerprint(stream), clean_references[len(torture_batches)]
        )

    def test_losing_every_snapshot_still_replays_the_journal(
        self, torture_graph, torture_batches, clean_references, tmp_path
    ):
        store = tmp_path / "store"
        run_store_stream(
            store, torture_graph, torture_batches, segment_bytes=10**6
        )  # one segment: the journal holds the full history
        for blob in (store / "snapshots").glob("snap-*.state"):
            flip_bit(blob, blob.stat().st_size // 2)
        stream, report = StreamStateStore.recover(store)
        assert report.snapshots_quarantined == 2
        assert report.snapshot_used is None
        assert report.bit_exact
        assert_same_state(
            state_fingerprint(stream), clean_references[len(torture_batches)]
        )


# --------------------------------------------------------------------- #
# Bounded resume: snapshots cut replay to the journal suffix, provably
# --------------------------------------------------------------------- #


class TestSnapshotBoundedResume:
    def test_recovery_replays_only_the_post_snapshot_suffix(
        self, torture_graph, torture_batches, tmp_path
    ):
        store = tmp_path / "store"
        original = run_store_stream(store, torture_graph, torture_batches)
        last_snapshot = original._store.last_snapshot_batch
        assert last_snapshot >= 4
        stream, report = StreamStateStore.recover(store)
        assert report.bit_exact
        # Read accounting, not timing: the snapshot restored its batches,
        # replay touched only the remainder, and at least one pre-snapshot
        # segment was skipped by header without reading its body.
        assert report.batches_restored == last_snapshot
        assert report.batches_replayed == len(torture_batches) - last_snapshot
        assert report.segments_skipped + report.segments_replayed == report.segments_scanned
        assert report.segments_skipped >= 1
        # And truncation bounded the journal itself: every surviving
        # segment is needed by a retained snapshot.
        infos = StreamJournal.scan_segments(store / "journal")
        retained_from = min(
            int(p.name[len("snap-") : -len(".json")])
            for p in (store / "snapshots").glob("snap-*.json")
        )
        assert all(
            successor.first_batch > retained_from
            for successor in infos[1:]
        )

    def test_checkpoint_requires_a_store(self, torture_graph):
        stream = StreamingSparsifier(torture_graph.num_vertices, seed=SEED)
        with pytest.raises(Exception, match="store"):
            stream.checkpoint()


# --------------------------------------------------------------------- #
# Leveled retained state
# --------------------------------------------------------------------- #


class TestLeveledState:
    def test_leveled_compaction_is_deterministic_and_bounded(self, torture_graph):
        capacity = 40
        runs = []
        for _ in range(2):
            stream = StreamingSparsifier(
                torture_graph.num_vertices,
                seed=SEED,
                compaction_interval=25,
                levels=3,
                level_capacity=capacity,
            )
            edges = np.column_stack([torture_graph.edge_u, torture_graph.edge_v])
            for lo in range(0, torture_graph.num_edges, 40):
                stream.ingest(
                    edges[lo : lo + 40], torture_graph.edge_weights[lo : lo + 40]
                )
            runs.append(stream)
        assert_same_state(state_fingerprint(runs[0]), state_fingerprint(runs[1]))
        sizes = runs[0].level_sizes
        assert len(sizes) == 3
        # Every level but the deepest honors its geometric capacity.
        for depth, size in enumerate(sizes[:-1]):
            assert size <= capacity * LEVEL_FANOUT**depth

    def test_single_level_matches_the_classic_pool(self, torture_graph):
        kwargs = dict(seed=SEED, compaction_interval=25)
        edges = np.column_stack([torture_graph.edge_u, torture_graph.edge_v])

        def run(**extra):
            stream = StreamingSparsifier(
                torture_graph.num_vertices, **kwargs, **extra
            )
            for lo in range(0, torture_graph.num_edges, 40):
                stream.ingest(
                    edges[lo : lo + 40], torture_graph.edge_weights[lo : lo + 40]
                )
            return stream

        classic, single = run(), run(levels=1)
        snap_a, snap_b = classic.snapshot(), single.snapshot()
        assert np.array_equal(snap_a.graph.edge_u, snap_b.graph.edge_u)
        assert np.array_equal(snap_a.graph.edge_v, snap_b.graph.edge_v)
        assert np.array_equal(snap_a.graph.edge_weights, snap_b.graph.edge_weights)

    def test_leveled_state_round_trips_through_recovery(
        self, torture_graph, torture_batches, tmp_path
    ):
        store = tmp_path / "store"
        original = run_store_stream(
            store, torture_graph, torture_batches, levels=3, level_capacity=30
        )
        stream, report = StreamStateStore.recover(store)
        assert report.bit_exact
        assert stream.level_sizes == original.level_sizes
        assert_same_state(state_fingerprint(stream), state_fingerprint(original))
        # The recovered stream keeps leveling: one more batch lands
        # identically on both sides.
        extra_edges, extra_weights = torture_batches[0]
        original.ingest(extra_edges, extra_weights)
        stream.ingest(extra_edges, extra_weights)
        assert_same_state(state_fingerprint(stream), state_fingerprint(original))


# --------------------------------------------------------------------- #
# Harness self-tests: the torturer must itself be trustworthy
# --------------------------------------------------------------------- #


class TestCrashPointIO:
    def test_counts_and_dies_exactly_once(self, tmp_path):
        io = CrashPointIO(crash_at=2)
        io.mkdir(tmp_path / "d")
        io.append_line(tmp_path / "d" / "f", "one\n")
        with pytest.raises(SimulatedCrash):
            io.append_line(tmp_path / "d" / "f", "two\n")
        assert io.crashed
        with pytest.raises(SimulatedCrash):  # a dead process stays dead
            io.fsync_dir(tmp_path / "d")
        assert (tmp_path / "d" / "f").read_text() == "one\n"

    def test_torn_mode_leaves_half_the_payload(self, tmp_path):
        io = CrashPointIO(crash_at=0, mode="torn")
        target = tmp_path / "t"
        with pytest.raises(SimulatedCrash):
            io.write_bytes(target, b"abcdefgh")
        assert target.read_bytes() == b"abcd"

    def test_flip_mode_corrupts_one_byte(self, tmp_path):
        io = CrashPointIO(crash_at=0, mode="flip")
        target = tmp_path / "t"
        with pytest.raises(SimulatedCrash):
            io.write_bytes(target, b"\x00" * 8)
        data = target.read_bytes()
        assert len(data) == 8
        assert data.count(b"\x10") == 1

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            CrashPointIO(mode="chaotic")
