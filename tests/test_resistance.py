"""Tests for repro.resistance (exact, approximate, stretch, Lemma 1 bounds)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import DisconnectedGraphError, GraphError
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.graphs.operations import disjoint_union
from repro.resistance.approx import approximate_effective_resistances
from repro.resistance.exact import (
    effective_resistance,
    effective_resistances_all_edges,
    effective_resistances_of_pairs,
    leverage_scores,
)
from repro.resistance.stretch import (
    bundle_leverage_bound,
    parallel_paths_resistance,
    path_resistance,
    spanner_stretch_bound,
    stretch_of_edge_over_path,
    stretch_over_subgraph,
    stretches_over_tree,
)
from repro.spanners.bundle import t_bundle_spanner


class TestExactResistance:
    def test_single_edge(self):
        g = Graph(2, [0], [1], [4.0])
        assert effective_resistance(g, 0, 1) == pytest.approx(0.25)

    def test_series_path(self):
        """Resistors in series add: R = sum 1/w."""
        g = Graph(4, [0, 1, 2], [1, 2, 3], [1.0, 2.0, 4.0])
        assert effective_resistance(g, 0, 3) == pytest.approx(1.0 + 0.5 + 0.25)

    def test_parallel_edges(self):
        """Two parallel unit edges halve the resistance."""
        g = Graph(2, [0, 0], [1, 1], [1.0, 1.0])
        assert effective_resistance(g, 0, 1) == pytest.approx(0.5)

    def test_triangle(self, triangle_graph):
        # Edge in a unit triangle: 1 || 2 = 2/3.
        assert effective_resistance(triangle_graph, 0, 1) == pytest.approx(2.0 / 3.0)

    def test_complete_graph_formula(self):
        # K_n with unit weights: R_uv = 2/n for every pair.
        n = 7
        g = gen.complete_graph(n)
        assert effective_resistance(g, 2, 5) == pytest.approx(2.0 / n)

    def test_pinv_and_solve_agree(self, weighted_er_graph):
        pairs = [(0, 5), (3, 17), (10, 40)]
        by_pinv = effective_resistances_of_pairs(weighted_er_graph, pairs, method="pinv")
        by_solve = effective_resistances_of_pairs(weighted_er_graph, pairs, method="solve")
        assert np.allclose(by_pinv, by_solve, rtol=1e-5)

    def test_all_edges_matches_pairwise(self, small_er_graph):
        all_res = effective_resistances_all_edges(small_er_graph)
        pairs = np.stack([small_er_graph.edge_u, small_er_graph.edge_v], axis=1)
        pairwise = effective_resistances_of_pairs(small_er_graph, pairs)
        assert np.allclose(all_res, pairwise)

    def test_disconnected_pair_raises(self, triangle_graph):
        g = disjoint_union(triangle_graph, triangle_graph)
        with pytest.raises(DisconnectedGraphError):
            effective_resistance(g, 0, 4)

    def test_self_pair_rejected(self, triangle_graph):
        with pytest.raises(GraphError):
            effective_resistances_of_pairs(triangle_graph, [(1, 1)])

    def test_bad_pair_shape(self, triangle_graph):
        with pytest.raises(GraphError):
            effective_resistances_of_pairs(triangle_graph, [(0, 1, 2)])

    def test_out_of_range_pair(self, triangle_graph):
        with pytest.raises(GraphError):
            effective_resistances_of_pairs(triangle_graph, [(0, 9)])

    def test_unknown_method(self, triangle_graph):
        with pytest.raises(ValueError):
            effective_resistances_of_pairs(triangle_graph, [(0, 1)], method="magic")

    def test_empty_pairs(self, triangle_graph):
        assert effective_resistances_of_pairs(triangle_graph, np.zeros((0, 2))).shape == (0,)

    def test_resistance_bounded_by_direct_edge(self, weighted_er_graph):
        """R_e <= 1/w_e for every edge (the direct edge is one available path)."""
        res = effective_resistances_all_edges(weighted_er_graph)
        assert np.all(res <= 1.0 / weighted_er_graph.edge_weights + 1e-9)

    def test_rayleigh_monotonicity(self, small_er_graph):
        """Removing edges can only increase effective resistances."""
        keep = np.ones(small_er_graph.num_edges, dtype=bool)
        keep[::5] = False
        sub = small_er_graph.select_edges(keep)
        # Compare on edges present in both graphs.
        pairs = np.stack([sub.edge_u, sub.edge_v], axis=1)
        before = effective_resistances_of_pairs(small_er_graph, pairs)
        after = effective_resistances_of_pairs(sub, pairs)
        assert np.all(after >= before - 1e-9)


class TestLeverageScores:
    def test_sum_equals_n_minus_one(self, small_er_graph):
        """Leverage scores of a connected graph sum to n - 1 (the Laplacian rank)."""
        scores = leverage_scores(small_er_graph)
        assert scores.sum() == pytest.approx(small_er_graph.num_vertices - 1, rel=1e-6)

    def test_scores_in_unit_interval(self, weighted_er_graph):
        scores = leverage_scores(weighted_er_graph)
        assert np.all(scores > 0)
        assert np.all(scores <= 1.0 + 1e-9)

    def test_bridge_has_leverage_one(self, dumbbell):
        scores = leverage_scores(dumbbell)
        # The path (bridge) edges of a dumbbell are cut edges: leverage exactly 1.
        assert scores.max() == pytest.approx(1.0, abs=1e-8)

    def test_tree_edges_all_leverage_one(self):
        tree = gen.path_graph(10)
        assert np.allclose(leverage_scores(tree), 1.0)

    def test_weight_invariance_of_sum(self, weighted_er_graph):
        """Rescaling all weights leaves leverage scores unchanged."""
        scaled = weighted_er_graph.scaled(3.7)
        assert np.allclose(
            leverage_scores(weighted_er_graph), leverage_scores(scaled), rtol=1e-8
        )


class TestApproximateResistance:
    def test_close_to_exact(self, small_er_graph):
        exact = effective_resistances_all_edges(small_er_graph)
        approx = approximate_effective_resistances(small_er_graph, delta=0.3, seed=0)
        ratio = approx / exact
        # JL approximation: most edges within (1 +- delta); allow modest tails.
        assert np.median(np.abs(ratio - 1.0)) < 0.3
        assert ratio.min() > 0.4
        assert ratio.max() < 2.5

    def test_explicit_direction_count(self, small_er_graph):
        # 5 directions carry no JL guarantee at this n: the sketch warns.
        with pytest.warns(UserWarning, match="guarantee"):
            approx = approximate_effective_resistances(small_er_graph, num_directions=5, seed=1)
        assert approx.shape == (small_er_graph.num_edges,)
        assert np.all(approx >= 0)

    def test_empty_graph(self):
        assert approximate_effective_resistances(Graph(3)).shape == (0,)

    def test_bad_delta(self, triangle_graph):
        with pytest.raises(GraphError):
            approximate_effective_resistances(triangle_graph, delta=1.5)

    def test_reproducible_with_seed(self, small_er_graph):
        with pytest.warns(UserWarning, match="guarantee"):
            a = approximate_effective_resistances(small_er_graph, num_directions=8, seed=7)
            b = approximate_effective_resistances(small_er_graph, num_directions=8, seed=7)
        assert np.allclose(a, b)


class TestStretch:
    def test_path_resistance(self):
        assert path_resistance([1.0, 2.0, 4.0]) == pytest.approx(1.75)
        assert path_resistance([]) == 0.0

    def test_path_resistance_rejects_nonpositive(self):
        with pytest.raises(GraphError):
            path_resistance([1.0, 0.0])

    def test_parallel_paths_formula(self):
        # Two paths of resistance 1 and 1 in parallel: 0.5 (equation 2.1).
        assert parallel_paths_resistance([1.0, 1.0]) == pytest.approx(0.5)
        assert parallel_paths_resistance([2.0]) == pytest.approx(2.0)

    def test_parallel_paths_rejects_empty(self):
        with pytest.raises(GraphError):
            parallel_paths_resistance([])

    def test_stretch_of_edge_over_path(self):
        # Edge weight 2, path of resistive length 1.75 -> stretch 3.5.
        assert stretch_of_edge_over_path(2.0, [1.0, 2.0, 4.0]) == pytest.approx(3.5)

    def test_stretch_over_subgraph_direct_edge(self, triangle_graph):
        """If the subgraph contains the edge itself the stretch is 1."""
        stretches = stretch_over_subgraph(triangle_graph, triangle_graph)
        assert np.allclose(stretches, 1.0)

    def test_stretch_over_missing_connection_is_inf(self):
        g = Graph(3, [0, 1], [1, 2], [1.0, 1.0])
        empty = Graph(3)
        stretches = stretch_over_subgraph(g, empty)
        assert np.all(np.isinf(stretches))

    def test_stretch_over_tree_path(self):
        # Cycle C_4 over a path subgraph: the chord (0,3) must go around, stretch 3.
        cycle = gen.cycle_graph(4)
        tree = cycle.select_edges(np.array([0, 1, 2]))  # path 0-1-2-3
        stretches = stretches_over_tree(cycle, tree)
        chord_index = 3
        assert stretches[chord_index] == pytest.approx(3.0)

    def test_stretch_respects_weights(self):
        # Edge (0,2) of weight 4; path 0-1-2 with weights 1,1 has resistive length 2.
        g = Graph(3, [0, 1, 0], [1, 2, 2], [1.0, 1.0, 4.0])
        sub = g.select_edges(np.array([0, 1]))
        stretches = stretch_over_subgraph(g, sub, np.array([2]))
        assert stretches[0] == pytest.approx(8.0)

    def test_subgraph_vertex_mismatch(self, triangle_graph):
        with pytest.raises(GraphError):
            stretch_over_subgraph(triangle_graph, Graph(5))

    def test_spanner_stretch_bound_value(self):
        assert spanner_stretch_bound(1024) == pytest.approx(20.0)

    def test_bundle_leverage_bound_decreases_in_t(self):
        assert bundle_leverage_bound(256, 4) == pytest.approx(bundle_leverage_bound(256, 1) / 4)

    def test_bundle_leverage_bound_rejects_bad_t(self):
        with pytest.raises(GraphError):
            bundle_leverage_bound(100, 0)


class TestLemmaOne:
    """Empirical validation of Lemma 1: non-bundle edges have small leverage."""

    @pytest.mark.parametrize("t", [1, 2, 4])
    def test_leverage_bound_holds(self, medium_er_graph, t):
        bundle = t_bundle_spanner(medium_er_graph, t=t, seed=17)
        scores = leverage_scores(medium_er_graph)
        outside = np.ones(medium_er_graph.num_edges, dtype=bool)
        outside[bundle.edge_indices] = False
        if not outside.any():
            pytest.skip("bundle absorbed the whole graph")
        bound = bundle_leverage_bound(medium_er_graph.num_vertices, bundle.t)
        assert scores[outside].max() <= bound + 1e-9

    def test_leverage_bound_weighted_graph(self, weighted_er_graph):
        bundle = t_bundle_spanner(weighted_er_graph, t=2, seed=5)
        scores = leverage_scores(weighted_er_graph)
        outside = np.ones(weighted_er_graph.num_edges, dtype=bool)
        outside[bundle.edge_indices] = False
        if not outside.any():
            pytest.skip("bundle absorbed the whole graph")
        bound = bundle_leverage_bound(weighted_er_graph.num_vertices, bundle.t)
        assert scores[outside].max() <= bound + 1e-9

    @given(seed=st.integers(min_value=0, max_value=2_000))
    @settings(max_examples=10, deadline=None)
    def test_leverage_bound_random_graphs(self, seed):
        g = gen.erdos_renyi_graph(40, 0.3, seed=seed, ensure_connected=True)
        bundle = t_bundle_spanner(g, t=2, seed=seed + 1)
        outside = np.ones(g.num_edges, dtype=bool)
        outside[bundle.edge_indices] = False
        if not outside.any():
            return
        scores = leverage_scores(g)
        bound = bundle_leverage_bound(g.num_vertices, bundle.t)
        assert scores[outside].max() <= bound + 1e-9
