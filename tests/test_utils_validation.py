"""Tests for repro.utils.validation and repro.utils.timing / logging."""

import logging
import time

import numpy as np
import pytest
import scipy.sparse as sp

from repro.utils.logging import enable_console_logging, get_logger
from repro.utils.timing import Timer, timed
from repro.utils.validation import (
    check_epsilon,
    check_integer,
    check_positive,
    check_probability,
    check_square,
    check_symmetric,
    check_vector,
    require,
)


class TestRequire:
    def test_passes(self):
        require(True, "never raised")

    def test_raises_value_error(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")

    def test_custom_exception(self):
        with pytest.raises(TypeError):
            require(False, "boom", exc_type=TypeError)


class TestCheckInteger:
    def test_accepts_int(self):
        assert check_integer(5, "x") == 5

    def test_accepts_numpy_int(self):
        assert check_integer(np.int64(7), "x") == 7

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_integer(True, "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_integer(2.5, "x")

    def test_minimum_enforced(self):
        with pytest.raises(ValueError):
            check_integer(1, "x", minimum=2)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(0.5, "x") == 0.5

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ValueError):
            check_positive(0.0, "x")

    def test_accepts_zero_when_not_strict(self):
        assert check_positive(0.0, "x", strict=False) == 0.0

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_positive(float("nan"), "x")

    def test_rejects_non_number(self):
        with pytest.raises(TypeError):
            check_positive("abc", "x")


class TestCheckProbabilityEpsilon:
    def test_probability_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0
        with pytest.raises(ValueError):
            check_probability(1.1, "p")

    def test_epsilon_bounds(self):
        assert check_epsilon(0.5) == 0.5
        with pytest.raises(ValueError):
            check_epsilon(0.0)
        with pytest.raises(ValueError):
            check_epsilon(1.5)


class TestMatrixChecks:
    def test_square_ok(self):
        check_square(np.eye(3))

    def test_square_rejects_rectangular(self):
        with pytest.raises(ValueError):
            check_square(np.ones((2, 3)))

    def test_symmetric_dense(self):
        check_symmetric(np.eye(4))

    def test_symmetric_sparse(self):
        check_symmetric(sp.identity(5, format="csr"))

    def test_symmetric_rejects_asymmetric(self):
        mat = np.zeros((2, 2))
        mat[0, 1] = 1.0
        with pytest.raises(ValueError):
            check_symmetric(mat)

    def test_vector_check(self):
        out = check_vector([1, 2, 3], 3)
        assert out.dtype == float
        with pytest.raises(ValueError):
            check_vector([1, 2], 3)
        with pytest.raises(ValueError):
            check_vector(np.ones((2, 2)), 4)


class TestTimer:
    def test_section_records_time(self):
        timer = Timer()
        with timer.section("work"):
            time.sleep(0.001)
        assert timer.totals["work"] > 0
        assert timer.counts["work"] == 1

    def test_mean_and_summary(self):
        timer = Timer()
        for _ in range(3):
            with timer.section("x"):
                pass
        assert timer.counts["x"] == 3
        assert timer.mean("x") >= 0
        assert timer.summary()[0][0] == "x"

    def test_mean_missing_section(self):
        with pytest.raises(KeyError):
            Timer().mean("nope")

    def test_reset(self):
        timer = Timer()
        with timer.section("x"):
            pass
        timer.reset()
        assert timer.totals == {}

    def test_timed_decorator(self):
        @timed
        def add(a, b):
            return a + b

        result, elapsed = add(2, 3)
        assert result == 5
        assert elapsed >= 0


class TestLogging:
    def test_get_logger_namespace(self):
        assert get_logger("spanners").name == "repro.spanners"
        assert get_logger("repro.core").name == "repro.core"
        assert get_logger().name == "repro"

    def test_enable_console_logging_idempotent(self):
        enable_console_logging(logging.DEBUG)
        handlers_before = len(get_logger().handlers)
        enable_console_logging(logging.DEBUG)
        assert len(get_logger().handlers) == handlers_before
