"""Cross-cutting property-based tests (hypothesis) for core invariants.

These complement the per-module tests with randomized invariants that tie
several subsystems together:

* Laplacian algebra: L(G1 + G2) = L(G1) + L(G2), L(aG) = a L(G).
* Foster's theorem: leverage scores of a connected graph sum to n - 1.
* Effective resistance is a metric (triangle inequality) on random graphs.
* Spectral certificates behave correctly under scaling and edge removal.
* The SDD reduction preserves solutions for random SDD systems.
* PARALLELSAMPLE preserves the Laplacian in expectation (Monte Carlo check).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.certificates import certify_approximation
from repro.core.config import SparsifierConfig
from repro.core.sample import parallel_sample
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.linalg.pseudoinverse import solve_via_pseudoinverse
from repro.linalg.sdd import SDDMatrix
from repro.resistance.exact import effective_resistances_of_pairs, leverage_scores


def _random_connected_graph(seed: int, n_min: int = 8, n_max: int = 40) -> Graph:
    rng = np.random.default_rng(seed)
    n = int(rng.integers(n_min, n_max))
    p = float(rng.uniform(0.1, 0.5))
    return gen.erdos_renyi_graph(
        n, p, seed=seed, weight_range=(0.5, 3.0), ensure_connected=True
    )


class TestLaplacianAlgebra:
    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=20, deadline=None)
    def test_laplacian_of_sum_is_sum_of_laplacians(self, seed):
        a = _random_connected_graph(seed)
        b = _random_connected_graph(seed + 1, n_min=a.num_vertices, n_max=a.num_vertices + 1)
        if b.num_vertices != a.num_vertices:
            return
        combined = (a + b).laplacian().toarray()
        assert np.allclose(combined, a.laplacian().toarray() + b.laplacian().toarray())

    @given(
        seed=st.integers(min_value=0, max_value=5_000),
        factor=st.floats(min_value=0.1, max_value=8.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_laplacian_of_scaled_graph(self, seed, factor):
        g = _random_connected_graph(seed)
        assert np.allclose(
            g.scaled(factor).laplacian().toarray(), factor * g.laplacian().toarray()
        )


class TestResistanceInvariants:
    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=12, deadline=None)
    def test_fosters_theorem(self, seed):
        """Sum of leverage scores of a connected graph equals n - 1."""
        g = _random_connected_graph(seed)
        assert leverage_scores(g).sum() == pytest.approx(g.num_vertices - 1, rel=1e-5)

    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=10, deadline=None)
    def test_effective_resistance_triangle_inequality(self, seed):
        g = _random_connected_graph(seed, n_min=5, n_max=25)
        rng = np.random.default_rng(seed)
        a, b, c = rng.choice(g.num_vertices, size=3, replace=False)
        r_ab, r_bc, r_ac = effective_resistances_of_pairs(
            g, [(int(a), int(b)), (int(b), int(c)), (int(a), int(c))]
        )
        assert r_ac <= r_ab + r_bc + 1e-9


class TestCertificateInvariants:
    @given(
        seed=st.integers(min_value=0, max_value=5_000),
        factor=st.floats(min_value=0.2, max_value=5.0),
    )
    @settings(max_examples=12, deadline=None)
    def test_certificate_of_scaled_graph(self, seed, factor):
        g = _random_connected_graph(seed)
        cert = certify_approximation(g, g.scaled(factor))
        assert cert.lower == pytest.approx(factor, rel=1e-5)
        assert cert.upper == pytest.approx(factor, rel=1e-5)

    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=12, deadline=None)
    def test_subgraph_certificate_never_exceeds_one(self, seed):
        g = _random_connected_graph(seed)
        rng = np.random.default_rng(seed)
        keep = rng.random(g.num_edges) < 0.7
        if not keep.any():
            return
        sub = g.select_edges(keep)
        cert = certify_approximation(g, sub)
        assert cert.upper <= 1.0 + 1e-7
        assert cert.lower >= -1e-9


class TestSDDReductionProperty:
    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=10, deadline=None)
    def test_reduction_roundtrip_random_sdd(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 20))
        off = rng.uniform(-1.0, 1.0, size=(n, n)) * (rng.random((n, n)) < 0.5)
        off = 0.5 * (off + off.T)
        np.fill_diagonal(off, 0.0)
        mat = np.diag(np.abs(off).sum(axis=1) + rng.uniform(0.1, 1.0, n)) + off
        wrapper = SDDMatrix.from_matrix(mat)
        x_true = rng.standard_normal(n)
        y = solve_via_pseudoinverse(wrapper.laplacian, wrapper.reduce_rhs(mat @ x_true))
        assert np.allclose(wrapper.recover(y), x_true, atol=1e-5)


class TestSamplingExpectation:
    def test_parallel_sample_unbiased_in_expectation(self):
        """Averaging many PARALLELSAMPLE outputs approaches the input Laplacian.

        This is the E[G~] = G property underpinning the matrix-Chernoff
        argument of Theorem 4, checked by Monte Carlo on a small graph.
        """
        g = gen.erdos_renyi_graph(40, 0.3, seed=0, ensure_connected=True)
        config = SparsifierConfig.practical(bundle_t=1)
        total = np.zeros((g.num_vertices, g.num_vertices))
        trials = 40
        for seed in range(trials):
            result = parallel_sample(g, epsilon=0.5, config=config, seed=seed)
            total += result.sparsifier.laplacian().toarray()
        mean_laplacian = total / trials
        original = g.laplacian().toarray()
        scale = np.abs(original).max()
        # Entry-wise agreement within Monte Carlo noise.
        assert np.abs(mean_laplacian - original).max() < 0.35 * scale
        # Total weight agreement within a few percent.
        assert np.trace(mean_laplacian) == pytest.approx(np.trace(original), rel=0.1)
