"""Tests for repro.graphs.connectivity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.connectivity import (
    UnionFind,
    bfs_order,
    component_subgraphs,
    connected_components,
    is_connected,
    spanning_forest,
)
from repro.graphs.graph import Graph
from repro.graphs.operations import disjoint_union


class TestUnionFind:
    def test_initial_components(self):
        uf = UnionFind(5)
        assert uf.num_components == 5

    def test_union_reduces_components(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert uf.num_components == 3

    def test_union_same_set_returns_false(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.num_components == 3

    def test_connected(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.connected(0, 2)
        assert not uf.connected(0, 3)

    def test_component_labels_compact(self):
        uf = UnionFind(6)
        uf.union(0, 3)
        uf.union(1, 4)
        labels = uf.component_labels()
        assert labels.shape == (6,)
        assert labels.max() == 3  # 4 components labelled 0..3
        assert labels[0] == labels[3]
        assert labels[1] == labels[4]

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_matches_naive_connectivity(self, seed):
        """Union-find answers match transitive closure of the union operations."""
        rng = np.random.default_rng(seed)
        n = 15
        uf = UnionFind(n)
        naive = {i: {i} for i in range(n)}
        for _ in range(20):
            a, b = rng.integers(0, n, size=2)
            uf.union(int(a), int(b))
            merged = naive[a] | naive[b]
            for member in merged:
                naive[member] = merged
        for i in range(n):
            for j in range(n):
                assert uf.connected(i, j) == (j in naive[i])


class TestComponents:
    def test_connected_graph_single_component(self, small_er_graph):
        labels = connected_components(small_er_graph)
        assert labels.max() == 0
        assert is_connected(small_er_graph)

    def test_disconnected_union(self, triangle_graph):
        g = disjoint_union(triangle_graph, triangle_graph)
        labels = connected_components(g)
        assert labels.max() == 1
        assert not is_connected(g)
        assert np.all(labels[:3] == labels[0])
        assert np.all(labels[3:] == labels[3])

    def test_isolated_vertices(self):
        g = Graph(5, [0], [1], [1.0])
        labels = connected_components(g)
        assert len(np.unique(labels)) == 4

    def test_empty_graph(self):
        g = Graph(4)
        assert len(np.unique(connected_components(g))) == 4

    def test_single_vertex_connected(self):
        assert is_connected(Graph(1))
        assert is_connected(Graph(0))

    def test_component_subgraphs(self, triangle_graph, weighted_path):
        combined = disjoint_union(triangle_graph, weighted_path)
        parts = component_subgraphs(combined)
        assert len(parts) == 2
        sizes = sorted(sub.num_vertices for _, sub in parts)
        assert sizes == [3, 4]
        total_edges = sum(sub.num_edges for _, sub in parts)
        assert total_edges == combined.num_edges

    def test_component_subgraph_vertex_ids_map_back(self, triangle_graph):
        combined = disjoint_union(triangle_graph, Graph(2))
        parts = component_subgraphs(combined)
        all_ids = np.concatenate([ids for ids, _ in parts])
        assert sorted(all_ids.tolist()) == list(range(5))


class TestSpanningForestAndBFS:
    def test_spanning_forest_connected_graph(self, small_er_graph):
        forest = spanning_forest(small_er_graph)
        assert forest.num_edges == small_er_graph.num_vertices - 1
        assert is_connected(forest)

    def test_spanning_forest_disconnected(self, triangle_graph):
        g = disjoint_union(triangle_graph, triangle_graph)
        forest = spanning_forest(g)
        assert forest.num_edges == 6 - 2  # n - c

    def test_spanning_forest_preserves_components(self, dumbbell):
        forest = spanning_forest(dumbbell)
        assert np.array_equal(
            connected_components(forest), connected_components(dumbbell)
        )

    def test_bfs_order_visits_component(self, small_er_graph):
        order = bfs_order(small_er_graph, source=0)
        assert order[0] == 0
        assert len(np.unique(order)) == small_er_graph.num_vertices

    def test_bfs_order_partial_for_disconnected(self, triangle_graph):
        g = disjoint_union(triangle_graph, triangle_graph)
        order = bfs_order(g, source=0)
        assert len(order) == 3

    def test_bfs_order_bad_source(self, triangle_graph):
        with pytest.raises(ValueError):
            bfs_order(triangle_graph, source=10)

    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=20, deadline=None)
    def test_components_match_networkx(self, seed):
        """Cross-check the vectorised component labelling against networkx."""
        import networkx as nx

        from repro.graphs.conversion import to_networkx

        rng = np.random.default_rng(seed)
        n = 25
        m = int(rng.integers(0, 40))
        u = rng.integers(0, n, size=m)
        v = rng.integers(0, n, size=m)
        mask = u != v
        g = Graph(n, u[mask], v[mask], np.ones(mask.sum()))
        ours = len(np.unique(connected_components(g)))
        theirs = nx.number_connected_components(to_networkx(g))
        # networkx counts isolated vertices as components too; so do we.
        assert ours == theirs
