"""Tests for the unified request model (repro.api.request)."""

import json

import pytest

from repro.api import SparsifyRequest
from repro.core.config import SparsifierConfig
from repro.exceptions import RequestError


class TestValidation:
    def test_defaults_are_valid(self):
        request = SparsifyRequest()
        assert request.method == "koutis"
        assert request.epsilon is None
        assert request.rho == 4.0
        assert request.options == {}

    def test_rejects_empty_method(self):
        with pytest.raises(RequestError):
            SparsifyRequest(method="")

    def test_rejects_non_string_method(self):
        with pytest.raises(RequestError):
            SparsifyRequest(method=3)

    @pytest.mark.parametrize("epsilon", [0.0, -0.1, 1.5, "half"])
    def test_rejects_bad_epsilon(self, epsilon):
        with pytest.raises(RequestError):
            SparsifyRequest(epsilon=epsilon)

    def test_rejects_bad_rho(self):
        with pytest.raises(RequestError):
            SparsifyRequest(rho=0.5)

    def test_rejects_non_config(self):
        with pytest.raises(RequestError):
            SparsifyRequest(config={"epsilon": 0.5})

    def test_rejects_bad_workers_and_shards(self):
        with pytest.raises(RequestError):
            SparsifyRequest(max_workers=0)
        with pytest.raises(RequestError):
            SparsifyRequest(num_shards=0)

    def test_rejects_non_integer_seed(self):
        with pytest.raises(RequestError):
            SparsifyRequest(seed="entropy")
        with pytest.raises(RequestError):
            SparsifyRequest(seed=True)

    def test_rejects_non_string_option_keys(self):
        with pytest.raises(RequestError):
            SparsifyRequest(options={1: "x"})

    def test_is_immutable(self):
        request = SparsifyRequest(seed=1)
        with pytest.raises(Exception):
            request.seed = 2

    def test_options_are_copied(self):
        payload = {"probability": 0.5}
        request = SparsifyRequest(options=payload)
        payload["probability"] = 0.9
        assert request.options == {"probability": 0.5}

    def test_unknown_method_allowed_at_construction(self):
        # Mirrors SparsifierConfig.backend: existence is checked when the
        # engine resolves the request, so requests can predate registration.
        request = SparsifyRequest(method="not-yet-registered")
        assert request.method == "not-yet-registered"


class TestResolvedConfig:
    def test_default_config(self):
        assert SparsifyRequest().resolved_config() == SparsifierConfig()

    def test_execution_overrides_apply(self):
        request = SparsifyRequest(backend="thread", max_workers=3, num_shards=4)
        config = request.resolved_config()
        assert config.backend == "thread"
        assert config.max_workers == 3
        assert config.num_shards == 4

    def test_config_fields_survive_overrides(self):
        base = SparsifierConfig(bundle_t=2, mode="practical", num_shards=2)
        request = SparsifyRequest(config=base, backend="thread")
        config = request.resolved_config()
        assert config.bundle_t == 2
        assert config.backend == "thread"
        assert config.num_shards == 2  # not overridden: request.num_shards is None

    def test_with_overrides(self):
        request = SparsifyRequest(seed=1).with_overrides(seed=2, method="uniform")
        assert request.seed == 2
        assert request.method == "uniform"


class TestRoundTrip:
    def test_exact_round_trip_defaults(self):
        request = SparsifyRequest()
        assert SparsifyRequest.from_dict(request.to_dict()) == request

    def test_exact_round_trip_full(self):
        request = SparsifyRequest(
            method="koutis-distributed",
            epsilon=0.25,
            rho=8.0,
            config=SparsifierConfig(bundle_t=3, num_shards=2, backend="thread"),
            backend="serial",
            max_workers=2,
            num_shards=4,
            seed=123,
            certify=True,
            options={"stop_on_degenerate": False},
        )
        assert SparsifyRequest.from_dict(request.to_dict()) == request

    def test_round_trip_through_json_text(self):
        request = SparsifyRequest(
            method="uniform", epsilon=0.5, seed=7, options={"probability": 0.3}
        )
        text = json.dumps(request.to_dict())
        assert SparsifyRequest.from_dict(json.loads(text)) == request

    def test_from_dict_accepts_partial(self):
        request = SparsifyRequest.from_dict({"method": "uniform", "seed": 1})
        assert request.method == "uniform"
        assert request.rho == 4.0

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(RequestError, match="sharls"):
            SparsifyRequest.from_dict({"method": "koutis", "sharls": 4})

    def test_from_dict_rejects_bad_config_payload(self):
        with pytest.raises(RequestError):
            SparsifyRequest.from_dict({"config": {"no_such_knob": 1}})

    def test_from_dict_rejects_non_mapping(self):
        with pytest.raises(RequestError):
            SparsifyRequest.from_dict(["koutis"])
