"""Tests for the baseline sparsifiers (Spielman–Srivastava, uniform, Kapralov–Panigrahi)."""

import numpy as np
import pytest

from repro.baselines.kapralov_panigrahi import kapralov_panigrahi_sparsify, kp_sample_count
from repro.baselines.spielman_srivastava import spielman_srivastava_sparsify, ss_sample_count
from repro.baselines.uniform import uniform_probability_for_epsilon, uniform_sparsify
from repro.core.certificates import certify_approximation
from repro.exceptions import SparsificationError
from repro.graphs import generators as gen
from repro.graphs.connectivity import is_connected
from repro.graphs.graph import Graph


class TestSpielmanSrivastava:
    def test_quality_on_dense_graph(self):
        g = gen.erdos_renyi_graph(150, 0.4, seed=0, ensure_connected=True)
        result = spielman_srivastava_sparsify(g, epsilon=0.5, seed=1)
        cert = certify_approximation(g, result.sparsifier)
        assert cert.epsilon_achieved < 0.5
        assert is_connected(result.sparsifier)

    def test_distinct_edges_bounded_by_samples(self, medium_er_graph):
        result = spielman_srivastava_sparsify(medium_er_graph, epsilon=0.5, num_samples=500, seed=2)
        assert result.output_edges <= 500
        assert result.sparsifier.num_edges == result.output_edges

    def test_sample_count_formula(self):
        assert ss_sample_count(100, 1.0, constant=1.0) == int(np.ceil(100 * np.log(100)))
        # 1/eps^2 dependence (up to ceiling rounding).
        ratio = ss_sample_count(100, 0.5, constant=1.0) / ss_sample_count(100, 1.0, constant=1.0)
        assert ratio == pytest.approx(4.0, rel=0.01)

    def test_sample_count_rejects_bad_epsilon(self):
        with pytest.raises(SparsificationError):
            ss_sample_count(100, 0.0)

    def test_probabilities_sum_to_one(self, small_er_graph):
        result = spielman_srivastava_sparsify(small_er_graph, epsilon=0.5, seed=3)
        assert result.probabilities.sum() == pytest.approx(1.0)

    def test_approximate_resistance_path(self, small_er_graph):
        result = spielman_srivastava_sparsify(
            small_er_graph, epsilon=0.5, use_approximate_resistances=True, seed=4
        )
        assert result.solver_based
        cert = certify_approximation(small_er_graph, result.sparsifier)
        assert cert.epsilon_achieved < 1.0

    def test_total_weight_roughly_preserved(self):
        g = gen.erdos_renyi_graph(120, 0.3, seed=5, ensure_connected=True)
        result = spielman_srivastava_sparsify(g, epsilon=0.5, seed=6)
        assert 0.7 * g.total_weight < result.sparsifier.total_weight < 1.3 * g.total_weight

    def test_dumbbell_bridge_survives(self, dumbbell):
        result = spielman_srivastava_sparsify(dumbbell, epsilon=0.5, seed=7)
        assert is_connected(result.sparsifier)

    def test_empty_graph(self):
        result = spielman_srivastava_sparsify(Graph(3), seed=0)
        assert result.sparsifier.num_edges == 0

    def test_reproducible(self, small_er_graph):
        a = spielman_srivastava_sparsify(small_er_graph, seed=9)
        b = spielman_srivastava_sparsify(small_er_graph, seed=9)
        assert a.sparsifier.same_edge_set(b.sparsifier)


class TestUniform:
    def test_expected_rate(self):
        g = gen.erdos_renyi_graph(100, 0.4, seed=0)
        result = uniform_sparsify(g, probability=0.25, seed=1)
        rate = result.output_edges / result.input_edges
        assert 0.18 < rate < 0.32

    def test_weights_rescaled(self, small_er_graph):
        result = uniform_sparsify(small_er_graph, probability=0.5, seed=2)
        assert np.allclose(result.sparsifier.edge_weights, 2.0)

    def test_probability_one_keeps_everything(self, small_er_graph):
        result = uniform_sparsify(small_er_graph, probability=1.0, seed=0)
        assert result.sparsifier.same_edge_set(small_er_graph)

    def test_probability_validation(self, small_er_graph):
        with pytest.raises(SparsificationError):
            uniform_sparsify(small_er_graph, probability=0.0)

    def test_uniform_breaks_dumbbell_often(self, dumbbell):
        """Without a certificate the bridge is frequently dropped — the failure
        mode the bundle exists to prevent."""
        disconnections = 0
        for seed in range(12):
            result = uniform_sparsify(dumbbell, probability=0.25, seed=seed)
            if not is_connected(result.sparsifier):
                disconnections += 1
        assert disconnections > 0


class TestUniformEpsilonPath:
    def test_epsilon_derives_probability(self):
        g = gen.erdos_renyi_graph(150, 0.4, seed=0, ensure_connected=True)
        result = uniform_sparsify(g, epsilon=0.5, seed=1)
        assert result.epsilon == 0.5
        assert result.probability == uniform_probability_for_epsilon(g, 0.5)
        assert 0 < result.probability <= 1

    def test_epsilon_budget_matches_ss_budget(self):
        # The derived keep-probability targets the SS sample count, so the
        # expected kept-edge count matches the importance samplers' budget.
        g = gen.erdos_renyi_graph(150, 0.4, seed=0, ensure_connected=True)
        p = uniform_probability_for_epsilon(g, 0.5)
        assert p * g.num_edges == pytest.approx(
            min(g.num_edges, ss_sample_count(g.num_vertices, 0.5))
        )

    def test_sparse_graph_keeps_everything(self):
        g = gen.grid_graph(6, 6)  # far below the eps budget
        assert uniform_probability_for_epsilon(g, 0.5) == 1.0

    def test_probability_and_epsilon_are_exclusive(self, small_er_graph):
        with pytest.raises(SparsificationError):
            uniform_sparsify(small_er_graph, probability=0.5, epsilon=0.5)

    def test_epsilon_validation(self, small_er_graph):
        with pytest.raises(SparsificationError):
            uniform_sparsify(small_er_graph, epsilon=0.0)

    def test_default_still_quarter(self, small_er_graph):
        assert uniform_sparsify(small_er_graph, seed=0).probability == 0.25


class TestUnifiedResultAccessors:
    """All three baseline results expose the same accessor set."""

    def _results(self, graph):
        return [
            spielman_srivastava_sparsify(graph, epsilon=0.5, seed=1),
            uniform_sparsify(graph, probability=0.5, seed=1),
            kapralov_panigrahi_sparsify(graph, epsilon=0.5, seed=1),
        ]

    def test_shared_accessors(self, small_er_graph):
        for result in self._results(small_er_graph):
            assert result.input_edges == small_er_graph.num_edges
            assert result.output_edges == result.sparsifier.num_edges
            assert result.num_edges == result.sparsifier.num_edges
            assert result.reduction_factor >= 1.0

    def test_deprecated_distinct_edges_shims(self, small_er_graph):
        ss = spielman_srivastava_sparsify(small_er_graph, epsilon=0.5, seed=1)
        kp = kapralov_panigrahi_sparsify(small_er_graph, epsilon=0.5, seed=1)
        for result in (ss, kp):
            with pytest.warns(DeprecationWarning, match="distinct_edges"):
                assert result.distinct_edges == result.output_edges


class TestKapralovPanigrahi:
    def test_quality_reasonable(self):
        g = gen.erdos_renyi_graph(120, 0.4, seed=0, ensure_connected=True)
        result = kapralov_panigrahi_sparsify(g, epsilon=0.5, seed=1)
        cert = certify_approximation(g, result.sparsifier)
        assert cert.epsilon_achieved < 1.0
        assert is_connected(result.sparsifier)

    def test_sample_count_eps_fourth_dependence(self):
        assert kp_sample_count(256, 0.5, constant=1.0) == 16 * kp_sample_count(256, 1.0, constant=1.0)

    def test_sample_count_rejects_bad_epsilon(self):
        with pytest.raises(SparsificationError):
            kp_sample_count(100, -1.0)

    def test_upper_bounds_dominate_true_resistances(self, small_er_graph):
        from repro.resistance.exact import effective_resistances_all_edges

        result = kapralov_panigrahi_sparsify(small_er_graph, epsilon=0.5, seed=2)
        exact = effective_resistances_all_edges(small_er_graph)
        assert np.all(result.resistance_upper_bounds >= exact - 1e-9)

    def test_uses_log_n_spanners(self, small_er_graph):
        result = kapralov_panigrahi_sparsify(small_er_graph, epsilon=0.5, seed=3)
        assert result.num_spanners <= int(np.ceil(np.log2(small_er_graph.num_vertices)))

    def test_empty_graph(self):
        result = kapralov_panigrahi_sparsify(Graph(4), seed=0)
        assert result.sparsifier.num_edges == 0

    def test_eps_dependence_worse_than_ours(self):
        """The KP sample budget grows ~1/eps^4 vs our bundle's ~1/eps^2 (Remark 4)."""
        ratio_kp = kp_sample_count(512, 0.25, constant=1.0) / kp_sample_count(512, 0.5, constant=1.0)
        from repro.spanners.bundle import bundle_size_for_epsilon

        ratio_ours = bundle_size_for_epsilon(512, 0.25) / bundle_size_for_epsilon(512, 0.5)
        assert ratio_kp == pytest.approx(16.0, rel=0.01)
        assert ratio_ours == pytest.approx(4.0, rel=0.01)
