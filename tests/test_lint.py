"""Tests for repro.lint — the AST invariant checker.

Structure mirrors the package: one test class per rule (positive fixture
that must fire, negative fixture that must not), then the engine
machinery (suppressions and their audit, syntax errors), the baseline
ratchet semantics, the CLI exit codes, the plugin registry — and finally
the meta-test: the linter run over the real ``src/`` tree must report
zero non-baselined findings, i.e. the repo obeys its own contracts.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    Baseline,
    BaselineError,
    Finding,
    LintRuleError,
    available_rules,
    lint_paths,
    lint_source,
    register_rule,
    rule_descriptions,
    unregister_rule,
)
from repro.lint.cli import main as lint_main
from repro.lint.engine import SYNTAX_ERROR_RULE, UNUSED_SUPPRESSION_RULE

REPO_ROOT = Path(__file__).resolve().parent.parent


def rules_hit(source, *, module="repro.somewhere", rules=None):
    """Rule ids reported for a dedented snippet linted as ``module``."""
    report = lint_source(textwrap.dedent(source), module=module, rules=rules)
    return [finding.rule for finding in report.findings]


# --------------------------------------------------------------------- #
# REP001 — RNG discipline
# --------------------------------------------------------------------- #


class TestRngDiscipline:
    def test_argless_default_rng_fires(self):
        src = """
            import numpy as np
            rng = np.random.default_rng()
        """
        assert rules_hit(src, rules=["REP001"]) == ["REP001"]

    def test_seeded_default_rng_clean(self):
        src = """
            import numpy as np
            rng = np.random.default_rng(1234)
        """
        assert rules_hit(src, rules=["REP001"]) == []

    def test_argless_seedsequence_fires(self):
        src = """
            from numpy.random import SeedSequence
            ss = SeedSequence()
        """
        assert rules_hit(src, rules=["REP001"]) == ["REP001"]

    def test_seedsequence_with_entropy_clean(self):
        src = """
            from numpy.random import SeedSequence
            ss = SeedSequence(42)
        """
        assert rules_hit(src, rules=["REP001"]) == []

    def test_stdlib_random_import_fires(self):
        assert rules_hit("import random\n", rules=["REP001"]) == ["REP001"]
        assert rules_hit("from random import shuffle\n", rules=["REP001"]) == ["REP001"]

    def test_aliased_import_is_resolved(self):
        src = """
            from numpy import random as nr
            rng = nr.default_rng()
        """
        assert rules_hit(src, rules=["REP001"]) == ["REP001"]

    def test_rng_seam_module_is_exempt(self):
        src = """
            import numpy as np
            def fresh():
                return np.random.SeedSequence()
        """
        assert rules_hit(src, module="repro.utils.rng", rules=["REP001"]) == []


# --------------------------------------------------------------------- #
# REP002 — nondeterminism hazards
# --------------------------------------------------------------------- #


class TestNondeterminism:
    def test_time_time_fires_outside_allowlist(self):
        src = """
            import time
            stamp = time.time()
        """
        assert rules_hit(src, rules=["REP002"]) == ["REP002"]

    def test_time_time_allowed_in_timing_module(self):
        src = """
            import time
            stamp = time.time()
        """
        assert rules_hit(src, module="repro.utils.timing", rules=["REP002"]) == []

    def test_perf_counter_clean(self):
        src = """
            import time
            start = time.perf_counter()
        """
        assert rules_hit(src, rules=["REP002"]) == []

    def test_os_urandom_and_uuid4_fire(self):
        src = """
            import os
            import uuid
            token = os.urandom(8)
            ident = uuid.uuid4()
        """
        assert rules_hit(src, rules=["REP002"]) == ["REP002", "REP002"]

    def test_array_from_set_fires(self):
        src = """
            import numpy as np
            arr = np.array({3, 1, 2})
            srt = np.asarray(set(values))
        """
        assert rules_hit(src, rules=["REP002"]) == ["REP002", "REP002"]

    def test_array_from_sorted_set_clean(self):
        src = """
            import numpy as np
            arr = np.array(sorted({3, 1, 2}))
        """
        assert rules_hit(src, rules=["REP002"]) == []


# --------------------------------------------------------------------- #
# REP003 — durability-seam bypass
# --------------------------------------------------------------------- #


class TestDurabilitySeam:
    def test_raw_os_replace_fires_in_streaming(self):
        src = """
            import os
            def rotate(a, b):
                os.replace(a, b)
        """
        assert rules_hit(src, module="repro.streaming.store", rules=["REP003"]) == ["REP003"]

    def test_write_mode_open_fires_in_checkpoint(self):
        src = """
            def save(path, text):
                with open(path, "w", encoding="utf-8") as fh:
                    fh.write(text)
        """
        assert rules_hit(src, module="repro.core.checkpoint", rules=["REP003"]) == ["REP003"]

    def test_read_open_is_allowed(self):
        # Recovery must be able to read whatever survived the crash.
        src = """
            def load(path):
                with open(path, "r", encoding="utf-8") as fh:
                    return fh.read()
        """
        assert rules_hit(src, module="repro.streaming.journal", rules=["REP003"]) == []

    def test_durableio_methods_are_the_seam(self):
        src = """
            import os
            class DurableIO:
                def replace(self, a, b):
                    os.replace(a, b)
                def write_bytes(self, path, data):
                    with open(path, "wb") as fh:
                        fh.write(data)
        """
        assert rules_hit(src, module="repro.core.checkpoint", rules=["REP003"]) == []

    def test_outside_durable_layer_not_scoped(self):
        src = """
            import os
            os.replace("a", "b")
        """
        assert rules_hit(src, module="repro.graphs.io", rules=["REP003"]) == []

    def test_io_object_calls_do_not_match(self):
        # self._io.replace is the seam in use, not a bypass.
        src = """
            def rotate(self, a, b):
                self._io.replace(a, b)
        """
        assert rules_hit(src, module="repro.streaming.store", rules=["REP003"]) == []


# --------------------------------------------------------------------- #
# REP004 — warnings.warn discipline
# --------------------------------------------------------------------- #


class TestWarningDiscipline:
    def test_warn_without_stacklevel_fires(self):
        src = """
            import warnings
            warnings.warn("degraded")
        """
        assert rules_hit(src, rules=["REP004"]) == ["REP004"]

    def test_warn_with_stacklevel_clean(self):
        src = """
            import warnings
            warnings.warn("degraded", RuntimeWarning, stacklevel=2)
        """
        assert rules_hit(src, rules=["REP004"]) == []


# --------------------------------------------------------------------- #
# REP005 — broad excepts need a reason
# --------------------------------------------------------------------- #


class TestBroadExcept:
    def test_unreasoned_broad_except_fires(self):
        src = """
            try:
                work()
            except Exception:
                pass
        """
        assert rules_hit(src, rules=["REP005"]) == ["REP005"]

    def test_bare_except_fires(self):
        src = """
            try:
                work()
            except:
                pass
        """
        assert rules_hit(src, rules=["REP005"]) == ["REP005"]

    def test_reason_pragma_clears(self):
        src = """
            try:
                work()
            except Exception:  # repro: broad-except policy layer sees every failure
                record()
        """
        assert rules_hit(src, rules=["REP005"]) == []

    def test_noqa_ble001_with_reason_clears(self):
        src = """
            try:
                work()
            except BaseException:  # noqa: BLE001 - must cancel peers on KeyboardInterrupt
                cancel()
        """
        assert rules_hit(src, rules=["REP005"]) == []

    def test_narrow_except_clean(self):
        src = """
            try:
                work()
            except (ValueError, OSError):
                pass
        """
        assert rules_hit(src, rules=["REP005"]) == []


# --------------------------------------------------------------------- #
# REP006 — per-edge loops in hot paths
# --------------------------------------------------------------------- #


class TestPerEdgeLoops:
    def test_for_loop_over_edge_array_fires_in_hot_path(self):
        src = """
            def slow(graph):
                total = 0.0
                for u in graph.edge_u:
                    total += u
                return total
        """
        assert rules_hit(src, module="repro.core.sample", rules=["REP006"]) == ["REP006"]

    def test_comprehension_over_edge_array_fires(self):
        src = """
            def slow(edge_weights):
                return [w * 2 for w in edge_weights]
        """
        assert rules_hit(src, module="repro.spanners.bundle", rules=["REP006"]) == ["REP006"]

    def test_vectorised_code_clean(self):
        src = """
            import numpy as np
            def fast(graph):
                return np.add.reduce(graph.edge_weights)
        """
        assert rules_hit(src, module="repro.core.sample", rules=["REP006"]) == []

    def test_reference_modules_not_scoped(self):
        src = """
            def reference(graph):
                return [u for u in graph.edge_u]
        """
        assert rules_hit(src, module="repro.spanners._reference", rules=["REP006"]) == []


# --------------------------------------------------------------------- #
# REP007 — text-mode open without encoding
# --------------------------------------------------------------------- #


class TestOpenEncoding:
    def test_text_open_without_encoding_fires(self):
        src = """
            with open("notes.txt") as fh:
                fh.read()
        """
        assert rules_hit(src, rules=["REP007"]) == ["REP007"]

    def test_path_open_method_fires(self):
        src = """
            def load(path):
                with path.open("r") as fh:
                    return fh.read()
        """
        assert rules_hit(src, rules=["REP007"]) == ["REP007"]

    def test_binary_open_clean(self):
        src = """
            with open("blob.bin", "rb") as fh:
                fh.read()
        """
        assert rules_hit(src, rules=["REP007"]) == []

    def test_encoding_keyword_clean(self):
        src = """
            with open("notes.txt", encoding="utf-8") as fh:
                fh.read()
        """
        assert rules_hit(src, rules=["REP007"]) == []


# --------------------------------------------------------------------- #
# Engine: suppressions, their audit, syntax errors
# --------------------------------------------------------------------- #


class TestSuppressions:
    def test_pragma_suppresses_named_rule(self):
        src = textwrap.dedent("""
            import numpy as np
            rng = np.random.default_rng()  # repro: noqa[REP001]
        """)
        report = lint_source(src, module="repro.somewhere", rules=["REP001"])
        assert report.findings == []
        assert [f.rule for f in report.suppressed] == ["REP001"]

    def test_pragma_suppresses_multiple_ids(self):
        src = textwrap.dedent("""
            import numpy as np
            import time
            x = np.array({time.time()})  # repro: noqa[REP002]
        """)
        report = lint_source(src, module="repro.somewhere", rules=["REP002"])
        assert report.findings == []
        assert len(report.suppressed) == 2  # both REP002 findings on the line

    def test_pragma_for_other_rule_does_not_suppress(self):
        src = textwrap.dedent("""
            import numpy as np
            rng = np.random.default_rng()  # repro: noqa[REP004]
        """)
        report = lint_source(src, module="repro.somewhere", rules=["REP001", "REP004"])
        rules = [f.rule for f in report.findings]
        assert "REP001" in rules  # the real finding survives
        assert UNUSED_SUPPRESSION_RULE in rules  # the useless pragma is audited

    def test_unused_suppression_reported(self):
        src = "x = 1  # repro: noqa[REP001]\n"
        report = lint_source(src, module="repro.somewhere")
        assert [f.rule for f in report.findings] == [UNUSED_SUPPRESSION_RULE]

    def test_pragma_in_string_literal_ignored(self):
        src = 'doc = "suppress with # repro: noqa[REP001]"\n'
        report = lint_source(src, module="repro.somewhere")
        assert report.findings == []

    def test_syntax_error_reported_not_raised(self):
        report = lint_source("def broken(:\n", module="repro.somewhere")
        assert [f.rule for f in report.findings] == [SYNTAX_ERROR_RULE]


# --------------------------------------------------------------------- #
# Baseline ratchet
# --------------------------------------------------------------------- #

VIOLATION = textwrap.dedent("""
    import numpy as np
    a = np.random.default_rng()
    b = np.random.default_rng()
""")


def report_for(source, module="repro.somewhere"):
    return lint_source(source, display_path="pkg/mod.py", module=module, rules=["REP001"])


class TestBaselineRatchet:
    def test_at_ceiling_is_clean(self):
        report = report_for(VIOLATION)
        baseline = Baseline.from_report(report)
        delta = baseline.compare(report)
        assert delta.clean
        assert delta.baselined_count == 2
        assert delta.new_findings == [] and delta.stale == []

    def test_above_ceiling_fails(self):
        baseline = Baseline.from_report(report_for(VIOLATION))
        worse = report_for(VIOLATION + "c = np.random.default_rng()\n")
        delta = baseline.compare(worse)
        # The whole bucket is suspect once its ceiling is exceeded.
        assert len(delta.new_findings) == 3
        assert not delta.clean

    def test_below_ceiling_is_stale(self):
        baseline = Baseline.from_report(report_for(VIOLATION))
        better = report_for("import numpy as np\na = np.random.default_rng()\n")
        delta = baseline.compare(better)
        assert delta.new_findings == []
        assert delta.stale == [("REP001", "pkg/mod.py", 2, 1)]

    def test_fixed_entirely_is_stale(self):
        baseline = Baseline.from_report(report_for(VIOLATION))
        clean = report_for("import numpy as np\na = np.random.default_rng(7)\n")
        delta = baseline.compare(clean)
        assert delta.new_findings == []
        assert delta.stale == [("REP001", "pkg/mod.py", 2, 0)]

    def test_save_load_roundtrip(self, tmp_path):
        baseline = Baseline.from_report(report_for(VIOLATION))
        path = tmp_path / "lint-baseline.json"
        baseline.save(path)
        assert Baseline.load(path).counts == baseline.counts
        # Deterministic serialization: saving twice is byte-identical.
        first = path.read_bytes()
        baseline.save(path)
        assert path.read_bytes() == first

    def test_missing_file_is_empty_baseline(self, tmp_path):
        assert Baseline.load(tmp_path / "absent.json").counts == {}

    def test_corrupt_baseline_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(BaselineError):
            Baseline.load(path)
        path.write_text(json.dumps({"version": 99, "counts": {}}), encoding="utf-8")
        with pytest.raises(BaselineError):
            Baseline.load(path)
        path.write_text(
            json.dumps({"version": 1, "counts": {"REP001": {"a.py": 0}}}),
            encoding="utf-8",
        )
        with pytest.raises(BaselineError):
            Baseline.load(path)


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #


@pytest.fixture()
def lint_tree(tmp_path, monkeypatch):
    """A tiny fake repo with one violation, cwd-pinned for the CLI."""
    pkg = tmp_path / "src" / "pkg"
    pkg.mkdir(parents=True)
    (pkg / "dirty.py").write_text(
        "import numpy as np\nrng = np.random.default_rng()\n", encoding="utf-8"
    )
    (pkg / "clean.py").write_text("VALUE = 1\n", encoding="utf-8")
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestCli:
    def test_violation_exits_1(self, lint_tree, capsys):
        assert lint_main(["src"]) == 1
        out = capsys.readouterr().out
        assert "REP001" in out and "dirty.py" in out

    def test_update_baseline_then_check_exits_0(self, lint_tree, capsys):
        assert lint_main(["src", "--update-baseline"]) == 0
        assert (lint_tree / "lint-baseline.json").exists()
        assert lint_main(["src", "--check"]) == 0

    def test_stale_baseline_fails_only_under_check(self, lint_tree, capsys):
        assert lint_main(["src", "--update-baseline"]) == 0
        dirty = lint_tree / "src" / "pkg" / "dirty.py"
        dirty.write_text("import numpy as np\nrng = np.random.default_rng(3)\n", encoding="utf-8")
        assert lint_main(["src"]) == 0  # advisory run: paying debt is fine
        assert lint_main(["src", "--check"]) == 1  # CI: ratchet must be tightened
        assert lint_main(["src", "--update-baseline"]) == 0
        assert lint_main(["src", "--check"]) == 0

    def test_no_baseline_reports_everything(self, lint_tree, capsys):
        assert lint_main(["src", "--update-baseline"]) == 0
        assert lint_main(["src", "--no-baseline"]) == 1

    def test_json_output_shape(self, lint_tree, capsys):
        code = lint_main(["src", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1 and payload["ok"] is False
        assert payload["files_checked"] == 2
        assert [f["rule"] for f in payload["findings"]] == ["REP001"]
        assert payload["findings"][0]["path"] == "src/pkg/dirty.py"

    def test_missing_path_exits_2(self, lint_tree, capsys):
        assert lint_main(["does-not-exist"]) == 2

    def test_list_rules_table(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REP001", "REP007"):
            assert rule_id in out

    def test_rules_filter(self, lint_tree, capsys):
        # REP001 violation present, but only REP007 requested → clean.
        assert lint_main(["src", "--rules", "REP007"]) == 0


# --------------------------------------------------------------------- #
# Registry plugin surface
# --------------------------------------------------------------------- #


class TestRegistry:
    def test_builtin_rules_registered(self):
        ids = available_rules()
        for rule_id in ("REP001", "REP002", "REP003", "REP004", "REP005", "REP006", "REP007"):
            assert rule_id in ids
        assert len(ids) >= 6

    def test_descriptions_have_titles(self):
        for rule_id, spec in rule_descriptions().items():
            assert spec.title, rule_id

    def test_register_and_unregister_custom_rule(self):
        @register_rule("REP901", title="no TODO markers (demo)")
        def check_todos(ctx):
            for lineno, line in enumerate(ctx.lines, 1):
                if "TODO-DEMO" in line:
                    yield Finding(
                        path=ctx.path, line=lineno, col=1,
                        rule="REP901", message="demo finding",
                    )

        try:
            assert "REP901" in available_rules()
            report = lint_source("x = 1  # TODO-DEMO\n", module="m", rules=["REP901"])
            assert [f.rule for f in report.findings] == ["REP901"]
        finally:
            unregister_rule("REP901")
        assert "REP901" not in available_rules()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(LintRuleError):
            @register_rule("REP001", title="clash")
            def clash(ctx):  # pragma: no cover - never runs
                return iter(())

    def test_invalid_rule_id_rejected(self):
        with pytest.raises(LintRuleError):
            @register_rule("NOPE1", title="bad id")
            def bad(ctx):  # pragma: no cover - never runs
                return iter(())


# --------------------------------------------------------------------- #
# Meta: the repo passes its own linter
# --------------------------------------------------------------------- #


class TestRepoIsClean:
    def test_src_has_zero_nonbaselined_findings(self):
        report = lint_paths([REPO_ROOT / "src"], root=REPO_ROOT)
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        delta = baseline.compare(report)
        new = "\n".join(f.format() for f in delta.new_findings)
        assert not delta.new_findings, f"non-baselined invariant violations:\n{new}"
        stale = "\n".join(str(entry) for entry in delta.stale)
        assert not delta.stale, f"stale baseline entries (ratchet down):\n{stale}"

    def test_all_rules_ran(self):
        report = lint_paths([REPO_ROOT / "src" / "repro" / "lint"], root=REPO_ROOT)
        assert len(report.rules_run) >= 6
