"""End-to-end integration tests: the full pipelines the examples/benchmarks use."""

import numpy as np

from repro import (
    SparsifierConfig,
    certify_approximation,
    parallel_sparsify,
    solve_laplacian,
    spielman_srivastava_sparsify,
)
from repro.analysis.spectral import approximation_report
from repro.core.distributed_sparsify import distributed_parallel_sparsify
from repro.graphs import generators as gen
from repro.graphs.connectivity import is_connected
from repro.solvers.peng_spielman import baseline_cg_solve


class TestSparsifyThenSolve:
    """Sparsify a dense graph, then use it as a preconditioner surrogate for solving."""

    def test_sparsifier_preserves_solution_quality(self):
        g = gen.erdos_renyi_graph(150, 0.3, seed=0, ensure_connected=True)
        sparse = parallel_sparsify(
            g, epsilon=0.5, rho=4, config=SparsifierConfig.practical(bundle_t=2), seed=1
        ).sparsifier
        rng = np.random.default_rng(2)
        b = rng.standard_normal(g.num_vertices)
        b -= b.mean()
        x_full = baseline_cg_solve(g, b, tol=1e-10).x
        x_sparse = baseline_cg_solve(sparse, b, tol=1e-10).x
        # Solutions of spectrally-close systems are close in the L_G-energy norm
        # relative to the solution energy.
        diff = x_full - x_sparse
        energy_diff = float(diff @ (g.laplacian() @ diff))
        energy_full = float(x_full @ (g.laplacian() @ x_full))
        assert energy_diff <= 2.0 * energy_full

    def test_solver_on_image_affinity_graph(self):
        g = gen.image_affinity_graph(16, 16, beta=20.0, seed=3)
        rng = np.random.default_rng(4)
        b = rng.standard_normal(g.num_vertices)
        b -= b.mean()
        report = solve_laplacian(
            g, b, tol=1e-8, config=SparsifierConfig.practical(bundle_t=1), seed=5
        )
        assert report.result.converged
        residual = np.linalg.norm(g.laplacian() @ report.x - b) / np.linalg.norm(b)
        assert residual < 1e-6


class TestPipelineComparisons:
    def test_spanner_sparsifier_vs_spielman_srivastava(self):
        """Both produce usable sparsifiers; SS is smaller at matched epsilon but needs solves."""
        g = gen.erdos_renyi_graph(150, 0.4, seed=6, ensure_connected=True)
        ours = parallel_sparsify(
            g, epsilon=0.5, rho=8, config=SparsifierConfig.practical(bundle_t=2), seed=7
        )
        theirs = spielman_srivastava_sparsify(g, epsilon=0.5, seed=8)
        cert_ours = certify_approximation(g, ours.sparsifier)
        cert_theirs = certify_approximation(g, theirs.sparsifier)
        # Practical-constant spanner sparsifier: bounded distortion (measured,
        # not the theory guarantee); SS with exact resistances meets epsilon.
        assert cert_ours.epsilon_achieved < 1.5
        assert cert_theirs.epsilon_achieved < 1.0
        assert is_connected(ours.sparsifier)
        assert is_connected(theirs.sparsifier)

    def test_distributed_and_sequential_agree_statistically(self):
        g = gen.erdos_renyi_graph(80, 0.25, seed=9, ensure_connected=True)
        config = SparsifierConfig.practical(bundle_t=2)
        seq = parallel_sparsify(g, epsilon=0.5, rho=4, config=config, seed=10)
        dist = distributed_parallel_sparsify(g, epsilon=0.5, rho=4, config=config, seed=10)
        ratio = dist.output_edges / max(seq.output_edges, 1)
        assert 0.5 < ratio < 2.0

    def test_full_report_pipeline(self):
        g = gen.random_geometric_graph(150, 0.25, seed=11)
        from repro.graphs.connectivity import component_subgraphs

        # Work on the largest component so resistances are defined.
        parts = component_subgraphs(g)
        largest = max(parts, key=lambda item: item[1].num_vertices)[1]
        result = parallel_sparsify(
            largest, epsilon=0.5, rho=4, config=SparsifierConfig.practical(bundle_t=2), seed=12
        )
        report = approximation_report(largest, result.sparsifier, seed=13)
        assert report.connectivity_preserved
        assert 0 < report.certificate.lower <= report.certificate.upper < 10
