"""Tests for the unified engine (repro.api): parity, telemetry, extension.

The parity tests are the load-bearing guarantee of the API redesign:
``Engine.run`` must produce *bit-identical* edge selections to the legacy
entry point of every registered method at the same seed.  (The legacy
koutis pipeline is itself pinned to the seed implementation by
``tests/golden/spanner_goldens.json`` / ``tests/test_spanner_golden.py``,
so engine == legacy == golden transitively.)
"""

import numpy as np
import pytest

import repro
from repro.api import (
    Engine,
    SparsifyRequest,
    available_method_names,
    available_methods,
    compare_methods,
    get_method,
    method_descriptions,
    register_method,
    sparsify,
    unregister_method,
)
from repro.baselines.kapralov_panigrahi import kapralov_panigrahi_sparsify
from repro.baselines.spielman_srivastava import spielman_srivastava_sparsify
from repro.baselines.uniform import uniform_sparsify
from repro.core.batch import sparsify_many
from repro.core.config import SparsifierConfig
from repro.core.distributed_sparsify import distributed_parallel_sparsify
from repro.core.sparsify import parallel_sparsify
from repro.exceptions import MethodError
from repro.graphs import generators
from repro.graphs.graph import Graph

BUILTIN_METHODS = (
    "koutis",
    "koutis-distributed",
    "koutis-batch",
    "spielman-srivastava",
    "uniform",
    "kapralov-panigrahi",
)


def assert_same_edges(a: Graph, b: Graph) -> None:
    """Bit-identical edge selection: arrays equal, not just set-equal."""
    assert a.num_vertices == b.num_vertices
    np.testing.assert_array_equal(a.edge_u, b.edge_u)
    np.testing.assert_array_equal(a.edge_v, b.edge_v)
    np.testing.assert_array_equal(a.edge_weights, b.edge_weights)


class TestRegistry:
    def test_all_builtin_methods_registered(self):
        names = available_methods()
        for method in BUILTIN_METHODS:
            assert method in names

    def test_aliases_resolve_to_canonical(self):
        assert get_method("ss").name == "spielman-srivastava"
        assert get_method("kp").name == "kapralov-panigrahi"
        assert get_method("distributed").name == "koutis-distributed"
        assert get_method("batch").name == "koutis-batch"

    def test_unknown_method_raises_with_listing(self):
        with pytest.raises(MethodError, match="koutis"):
            get_method("quantum-annealer")

    def test_descriptions_present(self):
        descriptions = method_descriptions()
        for method in BUILTIN_METHODS:
            assert descriptions[method]

    def test_duplicate_registration_rejected(self):
        with pytest.raises(MethodError, match="already registered"):
            register_method("koutis")(lambda *a, **k: None)

    def test_engine_resolves_method_eagerly(self):
        with pytest.raises(MethodError):
            Engine(SparsifyRequest(method="no-such-method"))

    def test_aliases_listed_in_method_names(self):
        names = available_method_names()
        for alias in ("ss", "kp", "distributed", "batch", "parallel-sparsify"):
            assert alias in names
        # Canonical listing stays alias-free.
        assert "ss" not in available_methods()

    def test_replace_over_alias_is_reachable_and_reversible(self):
        # Registering on top of an existing *alias* must not be shadowed
        # by the alias table, and must not delete the alias's owner.
        def runner(graph, **kwargs):
            raise NotImplementedError

        register_method("ss", replace=True)(runner)
        try:
            assert get_method("ss").runner is runner
            assert get_method("spielman-srivastava").name == "spielman-srivastava"
        finally:
            assert unregister_method("ss")
        # Restore the builtin alias for the rest of the suite.
        import repro.baselines.methods as baseline_methods

        register_method(
            "spielman-srivastava", aliases=("ss",), replace=True,
            description=get_method("spielman-srivastava").description,
        )(baseline_methods.run_spielman_srivastava)
        assert get_method("ss").name == "spielman-srivastava"

    def test_replace_canonical_cleans_stale_aliases(self):
        def first(graph, **kwargs):
            raise NotImplementedError

        def second(graph, **kwargs):
            raise NotImplementedError

        register_method("tmp-method", aliases=("tmp-alias",))(first)
        try:
            register_method("tmp-method", replace=True)(second)
            assert get_method("tmp-method").runner is second
            with pytest.raises(MethodError):
                get_method("tmp-alias")  # stale alias must not survive
        finally:
            unregister_method("tmp-method")


class TestParity:
    """Engine output == legacy entry point output, bit for bit."""

    def test_koutis(self, medium_er_graph):
        unified = sparsify(medium_er_graph, method="koutis", epsilon=0.5, rho=4.0, seed=7)
        legacy = parallel_sparsify(medium_er_graph, epsilon=0.5, rho=4.0, seed=7)
        assert_same_edges(unified.sparsifier, legacy.sparsifier)
        assert unified.input_edges == legacy.input_edges
        assert unified.output_edges == legacy.output_edges
        assert unified.cost == legacy.cost

    def test_koutis_sharded_on_thread_backend(self):
        graph = generators.grid_graph(12, 12)
        config = SparsifierConfig(bundle_t=2, num_shards=4, backend="thread", max_workers=2)
        unified = sparsify(graph, method="koutis", epsilon=0.5, seed=3, config=config)
        legacy = parallel_sparsify(graph, epsilon=0.5, config=config, seed=3)
        assert_same_edges(unified.sparsifier, legacy.sparsifier)

    def test_koutis_distributed(self, small_er_graph):
        config = SparsifierConfig(bundle_t=2)
        unified = sparsify(
            small_er_graph, method="koutis-distributed", epsilon=0.5, rho=4.0,
            seed=11, config=config,
        )
        legacy = distributed_parallel_sparsify(
            small_er_graph, epsilon=0.5, rho=4.0, config=config, seed=11
        )
        assert_same_edges(unified.sparsifier, legacy.sparsifier)
        assert unified.cost == legacy.cost

    def test_koutis_batch(self, small_er_graph):
        config = SparsifierConfig(bundle_t=2)
        unified = sparsify(
            small_er_graph, method="koutis-batch", epsilon=0.5, seed=5, config=config
        )
        legacy = sparsify_many([small_er_graph], epsilon=0.5, seed=5, config=config)
        assert_same_edges(unified.sparsifier, legacy.results[0].sparsifier)

    def test_spielman_srivastava(self, medium_er_graph):
        unified = sparsify(medium_er_graph, method="spielman-srivastava", epsilon=0.5, seed=2)
        legacy = spielman_srivastava_sparsify(medium_er_graph, epsilon=0.5, seed=2)
        assert_same_edges(unified.sparsifier, legacy.sparsifier)

    def test_spielman_srivastava_options_forwarded(self, small_er_graph):
        unified = sparsify(
            small_er_graph, method="spielman-srivastava", epsilon=0.5, seed=4,
            num_samples=400, use_approximate_resistances=True,
        )
        legacy = spielman_srivastava_sparsify(
            small_er_graph, epsilon=0.5, seed=4,
            num_samples=400, use_approximate_resistances=True,
        )
        assert_same_edges(unified.sparsifier, legacy.sparsifier)
        assert unified.native.solver_based

    def test_uniform_probability_option(self, medium_er_graph):
        unified = sparsify(medium_er_graph, method="uniform", seed=9, probability=0.25)
        legacy = uniform_sparsify(medium_er_graph, probability=0.25, seed=9)
        assert_same_edges(unified.sparsifier, legacy.sparsifier)

    def test_uniform_epsilon_path(self, medium_er_graph):
        unified = sparsify(medium_er_graph, method="uniform", epsilon=0.4, seed=9)
        legacy = uniform_sparsify(medium_er_graph, epsilon=0.4, seed=9)
        assert_same_edges(unified.sparsifier, legacy.sparsifier)

    def test_uniform_rejects_probability_epsilon_conflict(self, small_er_graph):
        # The engine surfaces the same conflict the legacy function rejects.
        from repro.exceptions import SparsificationError

        with pytest.raises(SparsificationError, match="not both"):
            sparsify(small_er_graph, method="uniform", epsilon=0.5, seed=1,
                     probability=0.3)

    def test_kapralov_panigrahi(self, medium_er_graph):
        unified = sparsify(medium_er_graph, method="kapralov-panigrahi", epsilon=0.5, seed=6)
        legacy = kapralov_panigrahi_sparsify(medium_er_graph, epsilon=0.5, seed=6)
        assert_same_edges(unified.sparsifier, legacy.sparsifier)

    def test_engine_run_is_repeatable(self, small_er_graph):
        engine = Engine(SparsifyRequest(method="koutis", epsilon=0.5, seed=13))
        first = engine.run(small_er_graph)
        second = engine.run(small_er_graph)
        assert_same_edges(first.sparsifier, second.sparsifier)


class TestRunMany:
    def _graphs(self):
        return [
            generators.erdos_renyi_graph(50, 0.2, seed=i, ensure_connected=True)
            for i in range(3)
        ]

    @pytest.mark.parametrize("backend,workers", [(None, None), ("thread", 2)])
    def test_matches_sparsify_many(self, backend, workers):
        graphs = self._graphs()
        config = SparsifierConfig(bundle_t=2)
        engine = Engine(
            SparsifyRequest(
                method="koutis", epsilon=0.5, seed=21, config=config,
                backend=backend, max_workers=workers,
            )
        )
        batch = engine.run_many(graphs)
        legacy = sparsify_many(
            graphs, epsilon=0.5, seed=21, config=config,
            backend=backend, max_workers=workers,
        )
        assert batch.num_jobs == legacy.num_jobs == 3
        for unified, job in zip(batch.results, legacy.results):
            assert_same_edges(unified.sparsifier, job.sparsifier)
        assert batch.total_input_edges == legacy.total_input_edges
        assert batch.total_output_edges == legacy.total_output_edges

    def test_backend_metadata_and_iteration(self):
        graphs = self._graphs()
        engine = Engine(
            SparsifyRequest(method="uniform", seed=2, backend="thread", max_workers=2)
        )
        batch = engine.run_many(graphs)
        assert batch.backend_name == "thread"
        assert batch.max_workers == 2
        assert batch.method == "uniform"
        assert len(list(batch)) == 3
        assert batch[0].output_edges <= graphs[0].num_edges

    def test_empty_batch(self):
        batch = Engine(SparsifyRequest(method="koutis")).run_many([])
        assert batch.num_jobs == 0
        assert batch.reduction_factor == 1.0
        assert batch.cost is None

    def test_aggregate_cost_matches_legacy_batch(self):
        graphs = self._graphs()
        config = SparsifierConfig(bundle_t=2)
        batch = Engine(
            SparsifyRequest(method="koutis", epsilon=0.5, seed=21, config=config)
        ).run_many(graphs)
        legacy = sparsify_many(graphs, epsilon=0.5, seed=21, config=config)
        assert batch.cost == legacy.cost

    def test_aggregate_cost_none_for_baselines(self):
        batch = Engine(SparsifyRequest(method="uniform", seed=1)).run_many(
            self._graphs()
        )
        assert batch.cost is None

    def test_per_job_events_in_input_order(self):
        graphs = self._graphs()
        events = []
        engine = Engine(
            SparsifyRequest(method="uniform", seed=3), progress=events.append
        )
        engine.run_many(graphs)
        assert [event.job_index for event in events] == [0, 1, 2]
        assert all(event.kind == "result" for event in events)


class TestTelemetry:
    def test_koutis_emits_per_round_events(self, small_er_graph):
        events = []
        result = sparsify(
            small_er_graph, method="koutis", epsilon=0.5, rho=8.0, seed=1,
            config=SparsifierConfig(bundle_t=1), progress=events.append,
        )
        rounds = [event for event in events if event.kind == "round"]
        finals = [event for event in events if event.kind == "result"]
        assert len(rounds) == len(result.native.rounds)
        assert [event.round_index for event in rounds] == list(
            range(1, len(rounds) + 1)
        )
        # Round telemetry mirrors the recorded rounds exactly.
        for event, record in zip(rounds, result.native.rounds):
            assert event.input_edges == record.input_edges
            assert event.output_edges == record.output_edges
        assert len(finals) == 1
        assert finals[0].output_edges == result.output_edges
        assert all(event.method == "koutis" for event in events)

    def test_distributed_emits_per_round_events(self, small_er_graph):
        events = []
        sparsify(
            small_er_graph, method="koutis-distributed", epsilon=0.5, seed=1,
            config=SparsifierConfig(bundle_t=2), progress=events.append,
        )
        rounds = [event for event in events if event.kind == "round"]
        assert rounds and [event.round_index for event in rounds] == list(
            range(1, len(rounds) + 1)
        )

    def test_single_shot_methods_emit_one_result_event(self, small_er_graph):
        events = []
        sparsify(small_er_graph, method="uniform", seed=1, progress=events.append)
        assert [event.kind for event in events] == ["result"]

    def test_no_progress_callback_is_fine(self, small_er_graph):
        result = sparsify(small_er_graph, method="koutis", seed=1)
        assert result.output_edges > 0


class TestUnifiedResult:
    def test_certificate_attached_on_request(self, small_er_graph):
        result = sparsify(
            small_er_graph, method="koutis", epsilon=0.5, seed=2, certify=True,
            config=SparsifierConfig(bundle_t=2),
        )
        assert result.certificate is not None
        assert result.certificate.lower > 0
        summary = result.summary()
        assert summary["cert_lower"] == result.certificate.lower

    def test_certificate_absent_by_default(self, small_er_graph):
        result = sparsify(small_er_graph, method="koutis", seed=2)
        assert result.certificate is None
        assert result.summary()["cert_lower"] is None

    def test_summary_fields(self, small_er_graph):
        result = sparsify(small_er_graph, method="uniform", seed=1, probability=0.5)
        summary = result.summary()
        assert summary["method"] == "uniform"
        assert summary["rounds"] == 1
        assert summary["input_edges"] == small_er_graph.num_edges
        assert summary["wall_seconds"] >= 0
        assert result.num_edges == result.output_edges

    def test_comparison_table_renders(self, small_er_graph):
        from repro.analysis.reporting import comparison_table

        results = compare_methods(
            small_er_graph, ["koutis", "uniform"], epsilon=0.5, seed=3,
            config=SparsifierConfig(bundle_t=2),
        )
        table = comparison_table(results)
        assert "koutis" in table and "uniform" in table
        assert "reduction" in table

    def test_compare_methods_requires_a_method(self, small_er_graph):
        with pytest.raises(MethodError):
            compare_methods(small_er_graph, [])


def _run_top_k(graph, *, config, epsilon, rho, seed, options, emit):
    """Toy third-party method: keep the k heaviest edges (deterministic)."""
    k = int(options.get("k", max(1, graph.num_edges // 2)))
    order = np.argsort(graph.edge_weights, kind="stable")[::-1][:k]
    kept = np.sort(order)
    sparsifier = Graph(
        graph.num_vertices,
        graph.edge_u[kept],
        graph.edge_v[kept],
        graph.edge_weights[kept],
    )
    emit("round", round_index=1, input_edges=graph.num_edges,
         output_edges=sparsifier.num_edges)

    class TopKResult:
        def __init__(self):
            self.sparsifier = sparsifier
            self.input_edges = graph.num_edges
            self.output_edges = sparsifier.num_edges

    return TopKResult()


class TestCustomMethodExtension:
    """register_method is a public extension point: a third-party method
    gets the full engine — requests, telemetry, batching, unified results."""

    @pytest.fixture()
    def top_k(self):
        register_method("top-k-weight", description="keep the k heaviest edges")(
            _run_top_k
        )
        yield "top-k-weight"
        assert unregister_method("top-k-weight")

    def test_registered_method_runs_through_front_door(self, top_k, weighted_er_graph):
        result = repro.sparsify(weighted_er_graph, method=top_k, seed=0, k=40)
        assert result.method == top_k
        assert result.output_edges == 40
        heaviest = np.sort(weighted_er_graph.edge_weights)[-40:]
        np.testing.assert_allclose(
            np.sort(result.sparsifier.edge_weights), heaviest
        )

    def test_custom_method_listed_and_unlisted(self, top_k):
        assert top_k in available_methods()
        assert unregister_method(top_k)
        assert top_k not in available_methods()
        # Re-register so the fixture teardown's unregister still succeeds.
        register_method(top_k)(_run_top_k)

    def test_custom_method_gets_batching_and_backends(self, top_k):
        graphs = [
            generators.erdos_renyi_graph(
                40, 0.3, seed=i, weight_range=(0.5, 5.0), ensure_connected=True
            )
            for i in range(4)
        ]
        engine = Engine(
            SparsifyRequest(
                method=top_k, seed=1, backend="thread", max_workers=2,
                options={"k": 25},
            )
        )
        batch = engine.run_many(graphs)
        assert batch.num_jobs == 4
        assert batch.backend_name == "thread"
        assert all(result.output_edges == 25 for result in batch.results)

    def test_custom_method_gets_telemetry_and_certificates(self, top_k, weighted_er_graph):
        events = []
        result = repro.sparsify(
            weighted_er_graph, method=top_k, seed=0, certify=True,
            k=weighted_er_graph.num_edges, progress=events.append,
        )
        # Keeping every edge is a perfect sparsifier: certificate == 1.
        assert result.certificate.epsilon_achieved < 1e-9
        assert [event.kind for event in events] == ["round", "result"]

    def test_unregister_unknown_returns_false(self):
        assert not unregister_method("never-registered")
