"""Tests for repro.graphs.laplacian."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import GraphError
from repro.graphs.graph import Graph
from repro.graphs.laplacian import (
    edge_laplacian,
    incidence_matrix,
    is_laplacian,
    laplacian_from_edges,
    laplacian_quadratic_form,
    laplacian_to_graph_arrays,
    weighted_degrees,
)


class TestLaplacianFromEdges:
    def test_matches_graph_laplacian(self, weighted_er_graph):
        g = weighted_er_graph
        lap = laplacian_from_edges(g.num_vertices, g.edge_u, g.edge_v, g.edge_weights)
        assert np.allclose(lap.toarray(), g.laplacian().toarray())

    def test_parallel_edges_summed(self):
        lap = laplacian_from_edges(2, np.array([0, 0]), np.array([1, 1]), np.array([1.0, 2.0]))
        assert lap[0, 1] == pytest.approx(-3.0)
        assert lap[0, 0] == pytest.approx(3.0)

    def test_empty_edges(self):
        lap = laplacian_from_edges(3, np.array([], dtype=int), np.array([], dtype=int), np.array([]))
        assert lap.nnz == 0
        assert lap.shape == (3, 3)

    def test_shape_mismatch(self):
        with pytest.raises(GraphError):
            laplacian_from_edges(3, np.array([0]), np.array([1, 2]), np.array([1.0]))


class TestIncidenceAndEdgeLaplacian:
    def test_incidence_reconstruction(self, small_er_graph):
        g = small_er_graph
        inc = incidence_matrix(g.num_vertices, g.edge_u, g.edge_v)
        reconstructed = inc.T @ sp.diags(g.edge_weights) @ inc
        assert np.allclose(reconstructed.toarray(), g.laplacian().toarray())

    def test_edge_laplacian_structure(self):
        be = edge_laplacian(4, 1, 3, weight=2.0).toarray()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[3, 3] = 2.0
        expected[1, 3] = expected[3, 1] = -2.0
        assert np.allclose(be, expected)

    def test_edge_laplacian_rejects_self_loop(self):
        with pytest.raises(GraphError):
            edge_laplacian(3, 1, 1)

    def test_edge_laplacian_sum_equals_graph_laplacian(self, weighted_path):
        total = sum(
            edge_laplacian(weighted_path.num_vertices, u, v, w).toarray()
            for u, v, w in weighted_path.edges()
        )
        assert np.allclose(total, weighted_path.laplacian().toarray())

    def test_edge_laplacian_psd_dominated_by_resistance(self, triangle_graph):
        # B_e <= R_e * L_G  (the algebraic fact quoted before Corollary 1).
        from repro.resistance.exact import effective_resistance

        lap = triangle_graph.laplacian().toarray()
        for u, v, w in triangle_graph.edges():
            be = edge_laplacian(3, u, v, 1.0).toarray()
            r = effective_resistance(triangle_graph, u, v)
            diff = r * lap - be
            eigenvalues = np.linalg.eigvalsh(0.5 * (diff + diff.T))
            assert eigenvalues.min() >= -1e-9


class TestHelpers:
    def test_weighted_degrees(self, weighted_path):
        deg = weighted_degrees(4, weighted_path.edge_u, weighted_path.edge_v, weighted_path.edge_weights)
        assert np.allclose(deg, [1.0, 3.0, 6.0, 4.0])

    def test_quadratic_form_from_arrays(self, weighted_er_graph, rng):
        g = weighted_er_graph
        x = rng.standard_normal(g.num_vertices)
        val = laplacian_quadratic_form(g.edge_u, g.edge_v, g.edge_weights, x)
        assert val == pytest.approx(g.quadratic_form(x))

    def test_quadratic_form_empty(self):
        assert laplacian_quadratic_form(np.array([]), np.array([]), np.array([]), np.array([1.0])) == 0.0


class TestIsLaplacian:
    def test_true_for_graph_laplacian(self, small_er_graph):
        assert is_laplacian(small_er_graph.laplacian())
        assert is_laplacian(small_er_graph.laplacian().toarray())

    def test_false_for_identity(self):
        assert not is_laplacian(np.eye(3))

    def test_false_for_asymmetric(self):
        mat = np.array([[1.0, -1.0], [0.0, 1.0]])
        assert not is_laplacian(mat)

    def test_false_for_positive_offdiagonal(self):
        mat = np.array([[1.0, 1.0], [1.0, 1.0]])
        assert not is_laplacian(mat)

    def test_false_for_rectangular(self):
        assert not is_laplacian(np.ones((2, 3)))

    def test_empty_matrix(self):
        assert is_laplacian(np.zeros((3, 3)))


class TestLaplacianToGraphArrays:
    def test_roundtrip(self, weighted_er_graph):
        lap = weighted_er_graph.laplacian()
        n, u, v, w = laplacian_to_graph_arrays(lap)
        rebuilt = Graph(n, u, v, w)
        assert rebuilt.same_edge_set(weighted_er_graph)

    def test_weight_tolerance_drops_noise(self):
        g = Graph(3, [0, 1], [1, 2], [1.0, 1e-15])
        n, u, v, w = laplacian_to_graph_arrays(g.laplacian(), weight_tol=1e-12)
        assert len(w) == 1
