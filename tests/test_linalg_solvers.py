"""Tests for repro.linalg.cg, pseudoinverse, and eigen."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import ConvergenceError
from repro.graphs import generators as gen
from repro.linalg.cg import (
    chebyshev_iteration,
    conjugate_gradient,
    deflate_constant,
    jacobi_iteration,
    laplacian_solve,
)
from repro.linalg.eigen import (
    condition_number,
    extreme_generalized_eigenvalues,
    largest_eigenvalue,
    relative_condition_number,
    smallest_nonzero_eigenvalue,
)
from repro.linalg.pseudoinverse import laplacian_pseudoinverse, solve_via_pseudoinverse


def _spd_matrix(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    return a @ a.T + n * np.eye(n)


class TestConjugateGradient:
    def test_solves_spd_system(self):
        mat = _spd_matrix(30, 0)
        rng = np.random.default_rng(1)
        x_true = rng.standard_normal(30)
        result = conjugate_gradient(mat, mat @ x_true, tol=1e-10)
        assert result.converged
        assert np.allclose(result.x, x_true, atol=1e-6)

    def test_zero_rhs(self):
        result = conjugate_gradient(np.eye(5), np.zeros(5))
        assert result.converged
        assert np.allclose(result.x, 0.0)
        assert result.iterations == 0

    def test_rhs_length_checked(self):
        with pytest.raises(ValueError):
            conjugate_gradient(np.eye(4), np.ones(5))

    def test_residual_history_monotone_start_end(self):
        mat = _spd_matrix(20, 2)
        result = conjugate_gradient(mat, np.ones(20), tol=1e-10)
        assert result.residual_history[0] >= result.residual_history[-1]

    def test_work_and_matvec_accounting(self):
        mat = sp.csr_matrix(_spd_matrix(15, 3))
        result = conjugate_gradient(mat, np.ones(15), tol=1e-10)
        assert result.matvecs == result.iterations + 1
        assert result.work == pytest.approx(mat.nnz * result.matvecs)

    def test_preconditioner_reduces_iterations(self):
        # An ill-conditioned diagonal system: Jacobi preconditioning solves it instantly.
        diag = np.logspace(0, 6, 40)
        mat = np.diag(diag)
        b = np.ones(40)
        plain = conjugate_gradient(mat, b, tol=1e-10)
        precond = conjugate_gradient(mat, b, tol=1e-10, preconditioner=lambda r: r / diag)
        assert precond.iterations < plain.iterations
        assert precond.precond_applications >= precond.iterations

    def test_max_iterations_respected(self):
        diag = np.logspace(0, 8, 50)
        result = conjugate_gradient(np.diag(diag), np.ones(50), tol=1e-14, max_iterations=3)
        assert result.iterations <= 3
        assert not result.converged

    def test_raise_on_failure(self):
        diag = np.logspace(0, 8, 50)
        with pytest.raises(ConvergenceError):
            conjugate_gradient(
                np.diag(diag), np.ones(50), tol=1e-14, max_iterations=2, raise_on_failure=True
            )

    def test_x0_initial_guess_used(self):
        mat = _spd_matrix(10, 4)
        x_true = np.arange(10.0)
        result = conjugate_gradient(mat, mat @ x_true, x0=x_true, tol=1e-10)
        assert result.iterations == 0
        assert result.converged


class TestLaplacianSolve:
    def test_solves_connected_laplacian(self, small_er_graph):
        lap = small_er_graph.laplacian()
        rng = np.random.default_rng(0)
        b = deflate_constant(rng.standard_normal(small_er_graph.num_vertices))
        result = laplacian_solve(lap, b, tol=1e-10)
        assert result.converged
        assert np.linalg.norm(lap @ result.x - b) < 1e-6 * np.linalg.norm(b)

    def test_solution_is_mean_zero(self, small_er_graph):
        lap = small_er_graph.laplacian()
        b = deflate_constant(np.arange(small_er_graph.num_vertices, dtype=float))
        result = laplacian_solve(lap, b, tol=1e-10)
        assert abs(result.x.mean()) < 1e-9

    def test_handles_unprojected_rhs(self, grid_graph_8x8):
        lap = grid_graph_8x8.laplacian()
        b = np.zeros(grid_graph_8x8.num_vertices)
        b[0], b[-1] = 1.0, -1.0
        b += 5.0  # constant shift is projected away
        result = laplacian_solve(lap, b, tol=1e-10)
        assert result.converged

    def test_deflate_constant(self):
        assert abs(deflate_constant(np.array([1.0, 2.0, 3.0])).mean()) < 1e-15


class TestJacobiAndChebyshev:
    def test_jacobi_converges_on_dominant_system(self):
        mat = _spd_matrix(20, 5) + 50 * np.eye(20)
        result = jacobi_iteration(mat, np.ones(20), tol=1e-8, max_iterations=500)
        assert result.converged

    def test_jacobi_requires_positive_diagonal(self):
        mat = np.array([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(ValueError):
            jacobi_iteration(mat, np.ones(2))

    def test_chebyshev_converges_with_good_bounds(self):
        mat = _spd_matrix(25, 6)
        eigs = np.linalg.eigvalsh(mat)
        result = chebyshev_iteration(
            mat, np.ones(25), eig_min=float(eigs[0]), eig_max=float(eigs[-1]),
            tol=1e-8, max_iterations=400,
        )
        assert result.converged

    def test_chebyshev_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            chebyshev_iteration(np.eye(3), np.ones(3), eig_min=2.0, eig_max=1.0)


class TestPseudoinverse:
    def test_pinv_matches_numpy(self, triangle_graph):
        lap = triangle_graph.laplacian().toarray()
        ours = laplacian_pseudoinverse(lap)
        theirs = np.linalg.pinv(lap)
        assert np.allclose(ours, theirs, atol=1e-8)

    def test_pinv_annihilates_constants(self, small_er_graph):
        pinv = laplacian_pseudoinverse(small_er_graph.laplacian())
        ones = np.ones(small_er_graph.num_vertices)
        assert np.allclose(pinv @ ones, 0.0, atol=1e-8)

    def test_pinv_is_inverse_on_range(self, small_er_graph):
        lap = small_er_graph.laplacian().toarray()
        pinv = laplacian_pseudoinverse(lap)
        n = lap.shape[0]
        projector = np.eye(n) - np.ones((n, n)) / n
        assert np.allclose(lap @ pinv, projector, atol=1e-7)

    def test_solve_via_pseudoinverse(self, grid_graph_8x8):
        lap = grid_graph_8x8.laplacian()
        b = np.zeros(grid_graph_8x8.num_vertices)
        b[0], b[-1] = 1.0, -1.0
        x = solve_via_pseudoinverse(lap, b)
        assert np.linalg.norm(lap @ x - b) < 1e-8

    def test_solve_length_checked(self):
        with pytest.raises(ValueError):
            solve_via_pseudoinverse(np.eye(3), np.ones(4))

    def test_dimension_limit_enforced(self):
        big = sp.identity(10_000, format="csr")
        with pytest.raises(ValueError):
            laplacian_pseudoinverse(big)


class TestEigen:
    def test_identity_pencil(self, small_er_graph):
        lap = small_er_graph.laplacian()
        lo, hi = extreme_generalized_eigenvalues(lap, lap)
        assert lo == pytest.approx(1.0, abs=1e-6)
        assert hi == pytest.approx(1.0, abs=1e-6)

    def test_scaled_pencil(self, small_er_graph):
        lap = small_er_graph.laplacian()
        lo, hi = extreme_generalized_eigenvalues(2.5 * lap, lap)
        assert lo == pytest.approx(2.5, abs=1e-6)
        assert hi == pytest.approx(2.5, abs=1e-6)

    def test_subgraph_is_dominated(self, small_er_graph):
        """Removing edges can only decrease the quadratic form: lambda_max <= 1."""
        keep = np.ones(small_er_graph.num_edges, dtype=bool)
        keep[::4] = False
        sub = small_er_graph.select_edges(keep)
        lo, hi = extreme_generalized_eigenvalues(sub.laplacian(), small_er_graph.laplacian())
        assert hi <= 1.0 + 1e-8
        assert lo >= -1e-9

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            extreme_generalized_eigenvalues(np.eye(3), np.eye(4))

    def test_zero_denominator_rejected(self):
        with pytest.raises(ValueError):
            extreme_generalized_eigenvalues(np.eye(3), np.zeros((3, 3)))

    def test_relative_condition_number(self, small_er_graph):
        lap = small_er_graph.laplacian()
        assert relative_condition_number(lap, lap) == pytest.approx(1.0, abs=1e-6)

    def test_smallest_nonzero_eigenvalue_path(self):
        # Algebraic connectivity of P_3 is 1 (eigenvalues 0, 1, 3).
        g = gen.path_graph(3)
        assert smallest_nonzero_eigenvalue(g.laplacian()) == pytest.approx(1.0, abs=1e-8)

    def test_largest_eigenvalue_complete_graph(self):
        # K_n Laplacian eigenvalues: 0 and n (multiplicity n-1).
        g = gen.complete_graph(6)
        assert largest_eigenvalue(g.laplacian()) == pytest.approx(6.0, abs=1e-8)

    def test_condition_number_complete_graph(self):
        g = gen.complete_graph(5)
        # All nonzero eigenvalues equal n, so the condition number is 1.
        assert condition_number(g.laplacian()) == pytest.approx(1.0, abs=1e-8)

    def test_iterative_path_reasonable(self):
        """The projected estimate for large pencils brackets the true range."""
        import repro.linalg.eigen as eig_mod

        g = gen.erdos_renyi_graph(80, 0.2, seed=3, ensure_connected=True)
        keep = np.ones(g.num_edges, dtype=bool)
        keep[::3] = False
        h = g.select_edges(keep)
        exact_lo, exact_hi = extreme_generalized_eigenvalues(h.laplacian(), g.laplacian())
        est_lo, est_hi = eig_mod._extreme_eigs_iterative(h.laplacian(), g.laplacian(), 1e-9)
        # The subspace estimate is inner (less extreme) but should be close.
        assert exact_lo - 1e-6 <= est_lo <= exact_hi + 1e-6
        assert exact_lo - 1e-6 <= est_hi <= exact_hi + 1e-6
        assert est_hi >= 0.9 * exact_hi - 0.1
