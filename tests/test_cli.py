"""Tests for the command-line interface (repro.cli)."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.graphs import generators as gen
from repro.graphs.io import read_edge_list, write_edge_list
from repro.graphs.operations import edge_membership_mask
from repro.spanners.verification import max_stretch_of_nonspanner_edges


@pytest.fixture()
def edge_list_file(tmp_path):
    graph = gen.erdos_renyi_graph(80, 0.2, seed=5, ensure_connected=True)
    path = tmp_path / "graph.txt"
    write_edge_list(graph, path)
    return path, graph


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sparsify_defaults_are_unset_sentinels(self):
        # None means "not given": explicit flag > --config file > built-in
        # default (0.5 / 4.0 / practical / seed 0), resolved by the engine.
        args = build_parser().parse_args(["sparsify", "in.txt", "out.txt"])
        assert args.method is None
        assert args.epsilon is None
        assert args.rho is None
        assert args.mode is None
        assert not args.tree_bundle
        assert args.backend is None
        assert args.workers is None
        assert args.shards is None
        assert args.seed is None
        assert args.config is None

    def test_sparsify_method_flag(self):
        args = build_parser().parse_args(
            ["sparsify", "in.txt", "out.txt", "--method", "spielman-srivastava"]
        )
        assert args.method == "spielman-srivastava"

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sparsify", "a", "b", "--method", "quantum"])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare", "in.txt"])
        assert args.methods is None
        assert not args.certify

    def test_compare_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "in.txt", "--methods", "koutis", "quantum"])

    def test_sparsify_execution_flags(self):
        args = build_parser().parse_args(
            ["sparsify", "in.txt", "out.txt", "--backend", "thread", "--workers", "4", "--shards", "8"]
        )
        assert args.backend == "thread"
        assert args.workers == 4
        assert args.shards == 8

    def test_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sparsify", "a", "b", "--backend", "quantum"])

    def test_batch_requires_output_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["batch", "a.txt", "b.txt"])

    def test_spanner_defaults(self):
        args = build_parser().parse_args(["spanner", "in.txt", "out.txt"])
        assert args.t == 1
        assert args.k is None

    def test_rejects_bad_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sparsify", "a", "b", "--mode", "heroic"])

    def test_solver_flag(self):
        args = build_parser().parse_args(["sparsify", "in.txt", "out.txt"])
        assert args.solver is None  # unset sentinel: config default wins
        args = build_parser().parse_args(
            ["sparsify", "in.txt", "out.txt", "--solver", "chain"]
        )
        assert args.solver == "chain"

    def test_rejects_unknown_solver(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sparsify", "a", "b", "--solver", "gaussian"])


class TestSparsifyCommand:
    def test_writes_sparsifier(self, edge_list_file, tmp_path, capsys):
        in_path, graph = edge_list_file
        out_path = tmp_path / "sparse.txt"
        code = main([
            "sparsify", str(in_path), str(out_path),
            "--rho", "4", "--bundle-t", "1", "--seed", "3",
        ])
        assert code == 0
        output = read_edge_list(out_path)
        assert output.num_vertices == graph.num_vertices
        assert 0 < output.num_edges <= graph.num_edges
        captured = capsys.readouterr().out
        assert "reduction" in captured

    def test_certify_flag_prints_certificate(self, edge_list_file, tmp_path, capsys):
        in_path, _ = edge_list_file
        out_path = tmp_path / "sparse.txt"
        code = main([
            "sparsify", str(in_path), str(out_path),
            "--bundle-t", "2", "--certify", "--seed", "1",
        ])
        assert code == 0
        assert "certificate:" in capsys.readouterr().out

    def test_certify_resistances_flag_prints_ratio_band(self, edge_list_file, tmp_path, capsys):
        in_path, _ = edge_list_file
        out_path = tmp_path / "sparse.txt"
        code = main([
            "sparsify", str(in_path), str(out_path),
            "--bundle-t", "2", "--certify-resistances", "8", "--seed", "1",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "resistance certificate:" in output
        assert "8 probe pairs" in output

    def test_solver_chain_certifies_end_to_end(self, edge_list_file, tmp_path, capsys):
        """--solver chain routes the resistance certificate through chain-PCG."""
        in_path, _ = edge_list_file
        out_path = tmp_path / "sparse.txt"
        code = main([
            "sparsify", str(in_path), str(out_path),
            "--bundle-t", "2", "--certify-resistances", "6", "--seed", "1",
            "--solver", "chain",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "resistance certificate:" in output
        assert "6 probe pairs" in output

    def test_tree_bundle_flag(self, edge_list_file, tmp_path):
        in_path, graph = edge_list_file
        out_path = tmp_path / "sparse_tree.txt"
        code = main([
            "sparsify", str(in_path), str(out_path),
            "--bundle-t", "2", "--tree-bundle", "--seed", "1",
        ])
        assert code == 0
        assert read_edge_list(out_path).num_edges <= graph.num_edges

    def test_method_flag_runs_baseline(self, edge_list_file, tmp_path, capsys):
        in_path, graph = edge_list_file
        out_path = tmp_path / "ss.txt"
        code = main([
            "sparsify", str(in_path), str(out_path),
            "--method", "spielman-srivastava", "--epsilon", "0.5", "--seed", "3",
        ])
        assert code == 0
        output = read_edge_list(out_path)
        assert output.num_vertices == graph.num_vertices
        assert "method: spielman-srivastava" in capsys.readouterr().out

    def test_method_output_matches_legacy_function(self, edge_list_file, tmp_path):
        from repro.core.sparsify import parallel_sparsify

        in_path, graph = edge_list_file
        out_path = tmp_path / "engine.txt"
        code = main([
            "sparsify", str(in_path), str(out_path),
            "--method", "koutis", "--bundle-t", "2", "--seed", "11",
        ])
        assert code == 0
        from repro.core.config import SparsifierConfig

        legacy = parallel_sparsify(
            graph, epsilon=0.5, rho=4.0, config=SparsifierConfig(bundle_t=2), seed=11
        )
        written = read_edge_list(out_path)
        assert np.array_equal(written.edge_u, legacy.sparsifier.edge_u)
        assert np.array_equal(written.edge_v, legacy.sparsifier.edge_v)

    def test_config_file_drives_request(self, edge_list_file, tmp_path, capsys):
        import json

        in_path, _ = edge_list_file
        request_path = tmp_path / "req.json"
        request_path.write_text(json.dumps({
            "method": "uniform", "seed": 9, "options": {"probability": 0.5},
        }))
        out_path = tmp_path / "from_config.txt"
        code = main([
            "sparsify", str(in_path), str(out_path), "--config", str(request_path),
        ])
        assert code == 0
        assert "method: uniform" in capsys.readouterr().out

    def test_explicit_flags_override_config_file(self, edge_list_file, tmp_path, capsys):
        import json

        in_path, _ = edge_list_file
        request_path = tmp_path / "req.json"
        request_path.write_text(json.dumps({"method": "uniform", "seed": 9}))
        out_path = tmp_path / "override.txt"
        code = main([
            "sparsify", str(in_path), str(out_path),
            "--config", str(request_path), "--method", "koutis", "--bundle-t", "1",
        ])
        assert code == 0
        assert "method: koutis" in capsys.readouterr().out

    def test_method_override_drops_stale_file_options(self, edge_list_file, tmp_path, capsys):
        import json

        in_path, _ = edge_list_file
        request_path = tmp_path / "req.json"
        # probability is a uniform-specific option; overriding the method
        # must not forward it to koutis as an unexpected keyword.
        request_path.write_text(json.dumps({
            "method": "uniform", "seed": 9, "options": {"probability": 0.5},
        }))
        out_path = tmp_path / "override_opts.txt"
        code = main([
            "sparsify", str(in_path), str(out_path),
            "--config", str(request_path), "--method", "koutis", "--bundle-t", "1",
        ])
        assert code == 0
        assert "method: koutis" in capsys.readouterr().out


class TestBatchCommand:
    def test_batch_writes_every_sparsifier(self, tmp_path, capsys):
        inputs = []
        originals = []
        for i in range(3):
            graph = gen.erdos_renyi_graph(50, 0.2, seed=i, ensure_connected=True)
            path = tmp_path / f"g{i}.txt"
            write_edge_list(graph, path)
            inputs.append(str(path))
            originals.append(graph)
        out_dir = tmp_path / "out"
        code = main([
            "batch", *inputs, "--output-dir", str(out_dir),
            "--bundle-t", "2", "--seed", "4", "--backend", "thread", "--workers", "2",
        ])
        assert code == 0
        for i, graph in enumerate(originals):
            sparse = read_edge_list(out_dir / f"g{i}.sparsified.txt")
            assert sparse.num_vertices == graph.num_vertices
            assert 0 < sparse.num_edges <= graph.num_edges
        out = capsys.readouterr().out
        assert "backend=thread" in out
        assert "total :" in out

    def test_batch_disambiguates_equal_stems(self, tmp_path):
        graph = gen.erdos_renyi_graph(40, 0.25, seed=0, ensure_connected=True)
        paths = []
        for sub in ("a", "b"):
            (tmp_path / sub).mkdir()
            path = tmp_path / sub / "graph.txt"
            write_edge_list(graph, path)
            paths.append(str(path))
        out_dir = tmp_path / "out"
        # A third input whose stem already looks like a numbered duplicate
        # must not collide with the generated names either.
        tricky = tmp_path / "graph-1.txt"
        write_edge_list(graph, tricky)
        paths.append(str(tricky))
        code = main(["batch", *paths, "--output-dir", str(out_dir), "--bundle-t", "1", "--seed", "2"])
        assert code == 0
        assert (out_dir / "graph.sparsified.txt").exists()
        assert (out_dir / "graph-1.sparsified.txt").exists()
        assert (out_dir / "graph-1-1.sparsified.txt").exists()

    def test_batch_sharded_run(self, tmp_path):
        graph = gen.grid_graph(8, 8)
        path = tmp_path / "grid.txt"
        write_edge_list(graph, path)
        out_dir = tmp_path / "out"
        code = main([
            "batch", str(path), "--output-dir", str(out_dir),
            "--bundle-t", "2", "--shards", "4", "--seed", "1",
        ])
        assert code == 0
        assert read_edge_list(out_dir / "grid.sparsified.txt").num_edges > 0


class TestCompareCommand:
    def test_side_by_side_table(self, edge_list_file, capsys):
        in_path, graph = edge_list_file
        code = main([
            "compare", str(in_path),
            "--methods", "koutis", "uniform", "spielman-srivastava",
            "--bundle-t", "2", "--seed", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Method comparison" in out
        for column in ("method", "kept_m", "reduction", "wall_s"):
            assert column in out
        for name in ("koutis", "uniform", "spielman-srivastava"):
            assert name in out

    def test_default_method_set(self, edge_list_file, capsys):
        in_path, _ = edge_list_file
        code = main(["compare", str(in_path), "--bundle-t", "1", "--seed", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "kapralov-panigrahi" in out

    def test_certify_fills_certificate_columns(self, edge_list_file, capsys):
        in_path, _ = edge_list_file
        code = main([
            "compare", str(in_path), "--methods", "koutis", "uniform",
            "--bundle-t", "2", "--seed", "5", "--certify",
        ])
        assert code == 0
        table = capsys.readouterr().out
        # With --certify the cert columns hold numbers, not "-" placeholders.
        data_rows = [
            line for line in table.splitlines()
            if line.startswith(("koutis", "uniform"))
        ]
        assert data_rows and all("-" not in row.split()[5] for row in data_rows)

    def test_requires_two_methods(self, edge_list_file):
        from repro.exceptions import ReproError

        in_path, _ = edge_list_file
        with pytest.raises(ReproError, match="at least two"):
            main(["compare", str(in_path), "--methods", "koutis"])

    def test_honours_config_file_execution_fields(self, edge_list_file, tmp_path, capsys):
        """compare must see the same sparsifier the sparsify subcommand
        writes for the same --config (num_shards is part of the algorithm)."""
        import json

        from repro.graphs.io import read_edge_list as read

        in_path, _ = edge_list_file
        request_path = tmp_path / "req.json"
        request_path.write_text(json.dumps({
            "num_shards": 4, "seed": 6, "config": {"bundle_t": 2},
        }))
        out_path = tmp_path / "sharded.txt"
        assert main(["sparsify", str(in_path), str(out_path),
                     "--config", str(request_path)]) == 0
        written = read(out_path)
        capsys.readouterr()
        assert main(["compare", str(in_path), "--config", str(request_path),
                     "--methods", "koutis", "uniform"]) == 0
        table = capsys.readouterr().out
        koutis_row = next(line for line in table.splitlines() if line.startswith("koutis"))
        assert f" {written.num_edges} " in koutis_row

    def test_rejects_method_specific_options(self, edge_list_file, tmp_path):
        import json

        from repro.exceptions import ReproError

        in_path, _ = edge_list_file
        request_path = tmp_path / "req.json"
        request_path.write_text(json.dumps({"options": {"probability": 0.5}}))
        with pytest.raises(ReproError, match="ambiguous"):
            main(["compare", str(in_path), "--config", str(request_path),
                  "--methods", "koutis", "uniform"])

    def test_accepts_method_aliases(self, edge_list_file, tmp_path, capsys):
        in_path, _ = edge_list_file
        out_path = tmp_path / "alias.txt"
        code = main([
            "sparsify", str(in_path), str(out_path), "--method", "ss", "--seed", "1",
        ])
        assert code == 0
        # The engine reports the canonical name for the alias.
        assert "method: spielman-srivastava" in capsys.readouterr().out


class TestSpannerCommand:
    def test_single_spanner_has_valid_stretch(self, edge_list_file, tmp_path, capsys):
        in_path, graph = edge_list_file
        out_path = tmp_path / "spanner.txt"
        code = main(["spanner", str(in_path), str(out_path), "--seed", "2"])
        assert code == 0
        spanner = read_edge_list(out_path)
        assert spanner.num_edges <= graph.num_edges
        # The written spanner is a subgraph with bounded stretch.
        mask = edge_membership_mask(graph, spanner)
        indices = np.flatnonzero(mask)
        max_stretch, _ = max_stretch_of_nonspanner_edges(graph, indices)
        assert max_stretch <= 2 * np.ceil(np.log2(graph.num_vertices)) - 1 + 1e-9
        assert "spanner:" in capsys.readouterr().out

    def test_bundle_output(self, edge_list_file, tmp_path, capsys):
        in_path, graph = edge_list_file
        out_path = tmp_path / "bundle.txt"
        code = main(["spanner", str(in_path), str(out_path), "--t", "2", "--seed", "2"])
        assert code == 0
        bundle = read_edge_list(out_path)
        assert bundle.num_edges <= graph.num_edges
        assert "bundle" in capsys.readouterr().out
