"""Tests for the command-line interface (repro.cli)."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.graphs import generators as gen
from repro.graphs.io import read_edge_list, write_edge_list
from repro.spanners.verification import max_stretch_of_nonspanner_edges
from repro.graphs.operations import edge_membership_mask


@pytest.fixture()
def edge_list_file(tmp_path):
    graph = gen.erdos_renyi_graph(80, 0.2, seed=5, ensure_connected=True)
    path = tmp_path / "graph.txt"
    write_edge_list(graph, path)
    return path, graph


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sparsify_defaults(self):
        args = build_parser().parse_args(["sparsify", "in.txt", "out.txt"])
        assert args.epsilon == 0.5
        assert args.rho == 4.0
        assert args.mode == "practical"
        assert not args.tree_bundle

    def test_spanner_defaults(self):
        args = build_parser().parse_args(["spanner", "in.txt", "out.txt"])
        assert args.t == 1
        assert args.k is None

    def test_rejects_bad_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sparsify", "a", "b", "--mode", "heroic"])


class TestSparsifyCommand:
    def test_writes_sparsifier(self, edge_list_file, tmp_path, capsys):
        in_path, graph = edge_list_file
        out_path = tmp_path / "sparse.txt"
        code = main([
            "sparsify", str(in_path), str(out_path),
            "--rho", "4", "--bundle-t", "1", "--seed", "3",
        ])
        assert code == 0
        output = read_edge_list(out_path)
        assert output.num_vertices == graph.num_vertices
        assert 0 < output.num_edges <= graph.num_edges
        captured = capsys.readouterr().out
        assert "reduction" in captured

    def test_certify_flag_prints_certificate(self, edge_list_file, tmp_path, capsys):
        in_path, _ = edge_list_file
        out_path = tmp_path / "sparse.txt"
        code = main([
            "sparsify", str(in_path), str(out_path),
            "--bundle-t", "2", "--certify", "--seed", "1",
        ])
        assert code == 0
        assert "certificate:" in capsys.readouterr().out

    def test_tree_bundle_flag(self, edge_list_file, tmp_path):
        in_path, graph = edge_list_file
        out_path = tmp_path / "sparse_tree.txt"
        code = main([
            "sparsify", str(in_path), str(out_path),
            "--bundle-t", "2", "--tree-bundle", "--seed", "1",
        ])
        assert code == 0
        assert read_edge_list(out_path).num_edges <= graph.num_edges


class TestSpannerCommand:
    def test_single_spanner_has_valid_stretch(self, edge_list_file, tmp_path, capsys):
        in_path, graph = edge_list_file
        out_path = tmp_path / "spanner.txt"
        code = main(["spanner", str(in_path), str(out_path), "--seed", "2"])
        assert code == 0
        spanner = read_edge_list(out_path)
        assert spanner.num_edges <= graph.num_edges
        # The written spanner is a subgraph with bounded stretch.
        mask = edge_membership_mask(graph, spanner)
        indices = np.flatnonzero(mask)
        max_stretch, _ = max_stretch_of_nonspanner_edges(graph, indices)
        assert max_stretch <= 2 * np.ceil(np.log2(graph.num_vertices)) - 1 + 1e-9
        assert "spanner:" in capsys.readouterr().out

    def test_bundle_output(self, edge_list_file, tmp_path, capsys):
        in_path, graph = edge_list_file
        out_path = tmp_path / "bundle.txt"
        code = main(["spanner", str(in_path), str(out_path), "--t", "2", "--seed", "2"])
        assert code == 0
        bundle = read_edge_list(out_path)
        single = read_edge_list(out_path)
        assert bundle.num_edges <= graph.num_edges
        assert "bundle" in capsys.readouterr().out
