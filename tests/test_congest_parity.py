"""Engine-parity tests: columnar CONGEST engine vs the reference simulator.

The columnar engine (:mod:`repro.parallel.congest` running
:class:`repro.spanners.congest_spanner.ColumnarBaswanaSenProgram`) must be
indistinguishable from the per-node reference simulator on everything the
paper measures: spanner edge sets, the exact (rounds, messages,
max_message_words) triple, the per-round message histogram, and the word
limit's trigger behaviour.  Three layers of guards:

* live parity — both engines run on the same inputs in-test;
* frozen goldens — ``tests/golden/congest_goldens.json`` pins the
  reference outputs, so both engines are compared against values that
  cannot drift with the code (regenerable via
  ``tests/golden/generate_congest_goldens.py``);
* pipeline parity — the distributed sparsifier produces bit-identical
  results under ``config.distributed_engine`` = reference / columnar,
  sharded or not.
"""

import json
import re
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import SparsifierConfig
from repro.core.distributed_sparsify import (
    distributed_parallel_sample,
    distributed_parallel_sparsify,
)
from repro.exceptions import MessageTooLargeError, SimulationError
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.parallel.congest import (
    ColumnarProgram,
    ColumnarSimulator,
    MessageBlock,
    concat_ranges,
)
from repro.parallel.distributed import DistributedSimulator
from repro.spanners.congest_spanner import ColumnarBaswanaSenProgram, build_schedule
from repro.spanners.distributed_spanner import (
    _BaswanaSenProgram,
    distributed_baswana_sen_spanner,
    distributed_bundle_spanner,
)

GOLDEN_PATH = Path(__file__).resolve().parent / "golden" / "congest_goldens.json"


@pytest.fixture(scope="module")
def golden_cases():
    """Rebuild the exact graphs the goldens were generated from (once)."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "congest_golden_generator", GOLDEN_PATH.parent / "generate_congest_goldens.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.cases()


@pytest.fixture(scope="module")
def goldens():
    return json.loads(GOLDEN_PATH.read_text())


def run_both_simulators(graph: Graph, seed, k=None, max_rounds=None):
    """Drive both engines directly; returns (reference, columnar) results."""
    simple = graph.coalesce()
    n = simple.num_vertices
    if k is None:
        k = max(1, int(np.ceil(np.log2(max(n, 2)))))
    cap = max_rounds or (len(build_schedule(k)) + 4)
    reference = DistributedSimulator(simple, seed=seed).run(
        _BaswanaSenProgram(n, k), max_rounds=cap
    )
    columnar = ColumnarSimulator(simple, seed=seed).run(
        ColumnarBaswanaSenProgram(n, k), max_rounds=cap
    )
    return reference, columnar


class TestSpannerParity:
    """Edge sets and cost triples identical across engines and seeds."""

    @pytest.mark.parametrize("case_index", range(6))
    @pytest.mark.parametrize("seed_offset", [0, 100])
    def test_driver_parity(self, golden_cases, case_index, seed_offset):
        name, graph, seed, k = golden_cases[case_index]
        reference = distributed_baswana_sen_spanner(
            graph, k=k, seed=seed + seed_offset, engine="reference"
        )
        columnar = distributed_baswana_sen_spanner(
            graph, k=k, seed=seed + seed_offset, engine="columnar"
        )
        assert np.array_equal(reference.edge_indices, columnar.edge_indices), name
        assert reference.cost == columnar.cost, name
        assert reference.completed == columnar.completed
        assert reference.k == columnar.k

    @pytest.mark.parametrize("case_index", range(6))
    def test_per_round_histogram_parity(self, golden_cases, case_index):
        name, graph, seed, k = golden_cases[case_index]
        reference, columnar = run_both_simulators(graph, seed, k=k)
        assert reference.messages_per_round == columnar.messages_per_round, name
        assert reference.rounds_executed == columnar.rounds_executed
        assert reference.completed and columnar.completed

    def test_truncated_run_parity(self):
        """Hitting max_rounds mid-protocol leaves both engines in the same state."""
        graph = gen.banded_graph(60, 5)
        reference, columnar = run_both_simulators(graph, seed=4, max_rounds=5)
        assert not reference.completed and not columnar.completed
        assert reference.messages_per_round == columnar.messages_per_round
        ref_spanner = distributed_baswana_sen_spanner(graph, seed=4, max_rounds=5, engine="reference")
        col_spanner = distributed_baswana_sen_spanner(graph, seed=4, max_rounds=5, engine="columnar")
        assert np.array_equal(ref_spanner.edge_indices, col_spanner.edge_indices)
        assert ref_spanner.cost == col_spanner.cost

    def test_unknown_engine_rejected(self):
        with pytest.raises(SimulationError):
            distributed_baswana_sen_spanner(gen.cycle_graph(5), seed=0, engine="quantum")


class TestGoldens:
    """Both engines must reproduce the frozen reference outputs."""

    @pytest.mark.parametrize("engine", ["reference", "columnar"])
    @pytest.mark.parametrize("case_index", range(6))
    def test_engine_matches_golden(self, goldens, golden_cases, engine, case_index):
        name, graph, seed, k = golden_cases[case_index]
        golden = goldens[name]
        assert golden["num_vertices"] == graph.num_vertices
        assert golden["num_edges"] == graph.num_edges
        result = distributed_baswana_sen_spanner(graph, k=k, seed=seed, engine=engine)
        assert result.edge_indices.tolist() == golden["edge_indices"], name
        assert result.cost.rounds == golden["rounds"]
        assert result.cost.messages == golden["messages"]
        assert result.cost.max_message_words == golden["max_message_words"]
        assert result.completed == golden["completed"]


class TestBundleAndPipelineParity:
    """The t-bundle driver and the sparsifier pipeline are engine-invariant."""

    def test_bundle_parity(self):
        graph = gen.barabasi_albert_graph(90, 4, seed=2)
        reference = distributed_bundle_spanner(graph.coalesce(), t=3, seed=8, engine="reference")
        columnar = distributed_bundle_spanner(graph.coalesce(), t=3, seed=8, engine="columnar")
        assert np.array_equal(reference.edge_indices, columnar.edge_indices)
        assert len(reference.component_edge_indices) == len(columnar.component_edge_indices)
        for ref_c, col_c in zip(reference.component_edge_indices, columnar.component_edge_indices):
            assert np.array_equal(ref_c, col_c)
        assert reference.cost == columnar.cost
        assert reference.components_built == columnar.components_built

    @pytest.mark.parametrize("num_shards", [1, 4])
    def test_parallel_sample_parity(self, num_shards):
        graph = gen.banded_graph(72, 6)
        results = {}
        for engine in ("reference", "columnar"):
            config = SparsifierConfig.practical(
                bundle_t=2, num_shards=num_shards, distributed_engine=engine
            )
            results[engine] = distributed_parallel_sample(graph, epsilon=0.5, config=config, seed=9)
        assert np.array_equal(
            results["reference"].bundle_edge_indices, results["columnar"].bundle_edge_indices
        )
        assert np.array_equal(
            results["reference"].sampled_edge_indices, results["columnar"].sampled_edge_indices
        )
        assert results["reference"].cost == results["columnar"].cost
        assert results["reference"].sparsifier.same_edge_set(results["columnar"].sparsifier)

    def test_parallel_sparsify_parity(self):
        graph = gen.erdos_renyi_graph(70, 0.2, seed=6, ensure_connected=True)
        outputs = {}
        for engine in ("reference", "columnar"):
            config = SparsifierConfig.practical(bundle_t=2, distributed_engine=engine)
            outputs[engine] = distributed_parallel_sparsify(
                graph, epsilon=0.5, rho=4.0, config=config, seed=3
            )
        assert outputs["reference"].cost == outputs["columnar"].cost
        assert outputs["reference"].output_edges == outputs["columnar"].output_edges
        assert outputs["reference"].sparsifier.same_edge_set(outputs["columnar"].sparsifier)

    def test_config_rejects_unknown_engine(self):
        from repro.exceptions import SparsificationError

        with pytest.raises(SparsificationError):
            SparsifierConfig(distributed_engine="fancy")


def _limit_outcome(graph: Graph, seed: int, limit: int, engine: str):
    """None if the run completes under ``limit``, else the failing round."""
    simple = graph.coalesce()
    n = simple.num_vertices
    k = max(1, int(np.ceil(np.log2(max(n, 2)))))
    cap = len(build_schedule(k)) + 4
    if engine == "reference":
        simulator = DistributedSimulator(simple, seed=seed, message_word_limit=limit)
        program = _BaswanaSenProgram(n, k)
    else:
        simulator = ColumnarSimulator(simple, seed=seed, message_word_limit=limit)
        program = ColumnarBaswanaSenProgram(n, k)
    try:
        simulator.run(program, max_rounds=cap)
        return None
    except MessageTooLargeError as exc:
        match = re.search(r"in round (\d+)", str(exc))
        assert match, f"unparseable message: {exc}"
        return int(match.group(1))


class TestWordLimitProperty:
    """The O(log n) word budget triggers identically in both engines.

    The protocol's flood tuples weigh 3 words and removal notices 1, so
    sweeping the limit across that boundary must flip both engines from
    completing to raising — in the same round.
    """

    @pytest.mark.parametrize("limit", [1, 2, 3, 4])
    @pytest.mark.parametrize(
        "make_graph,seed",
        [
            (lambda: gen.banded_graph(40, 4), 0),
            (lambda: gen.grid_graph(6, 6), 1),
            (lambda: gen.barabasi_albert_graph(40, 3, seed=4), 2),
        ],
    )
    def test_limit_trigger_parity(self, make_graph, seed, limit):
        graph = make_graph()
        reference = _limit_outcome(graph, seed, limit, "reference")
        columnar = _limit_outcome(graph, seed, limit, "columnar")
        assert reference == columnar
        if limit < 3:
            # Flood tuples (3 words) violate the budget in the very first round.
            assert reference == 1
        else:
            assert reference is None


class _ColumnarEcho(ColumnarProgram):
    """Every node broadcasts once; round 2 collects what was heard."""

    def round(self, net, round_number, inbox):
        if round_number == 1:
            nodes = np.arange(net.num_vertices, dtype=np.int64)
            return net.broadcast_block(nodes, 1, tag=np.zeros(net.num_vertices, np.int64)), False
        self.heard = np.sort(inbox.src)
        return None, True

    def finalize(self, net):
        return getattr(self, "heard", np.empty(0, dtype=np.int64))


class _ColumnarRogue(ColumnarProgram):
    """Attempts to message a non-neighbour on a cycle."""

    def round(self, net, round_number, inbox):
        block = MessageBlock(
            src=np.array([0]), dst=np.array([2]), words=np.array([1])
        )
        return block, True


class _ColumnarChatty(ColumnarProgram):
    """Sends one over-long message."""

    def round(self, net, round_number, inbox):
        block = MessageBlock(
            src=np.array([0]), dst=np.array([1]), words=np.array([10_000])
        )
        return block, True


class TestColumnarEngine:
    """Unit behaviour of the engine itself, mirroring the reference tests."""

    def test_echo_counts_match_reference_model(self):
        g = gen.cycle_graph(5)
        result = ColumnarSimulator(g, seed=0).run(_ColumnarEcho())
        assert result.completed
        assert result.cost.rounds == 2
        assert result.cost.messages == 10  # 5 nodes x 2 neighbours
        assert result.cost.max_message_words == 1
        assert result.messages_per_round == [10, 0]
        # Each node heard each neighbour once.
        assert np.array_equal(np.bincount(result.outputs, minlength=5), np.full(5, 2))

    def test_non_neighbour_send_rejected(self):
        with pytest.raises(SimulationError):
            ColumnarSimulator(gen.cycle_graph(4), seed=0).run(_ColumnarRogue())

    def test_word_limit_enforced(self):
        with pytest.raises(MessageTooLargeError):
            ColumnarSimulator(gen.cycle_graph(4), seed=0).run(_ColumnarChatty())

    def test_empty_graph(self):
        result = ColumnarSimulator(Graph(0), seed=0).run(_ColumnarEcho())
        assert result.completed
        assert result.cost == ColumnarSimulator(Graph(0), seed=1).run(_ColumnarEcho()).cost
        assert result.rounds_executed == 0

    def test_counters_reset_between_runs(self):
        simulator = ColumnarSimulator(gen.cycle_graph(6), seed=0)
        first = simulator.run(_ColumnarEcho())
        second = simulator.run(_ColumnarEcho())
        assert first.cost == second.cost
        assert first.messages_per_round == second.messages_per_round

    def test_message_block_validates_lengths(self):
        with pytest.raises(SimulationError):
            MessageBlock(src=np.array([0, 1]), dst=np.array([1]), words=np.array([1, 1]))
        with pytest.raises(SimulationError):
            MessageBlock(
                src=np.array([0]),
                dst=np.array([1]),
                words=np.array([1]),
                columns={"tag": np.array([0, 1])},
            )

    def test_receiver_slots_roundtrip(self):
        g = gen.grid_graph(4, 4)
        net = ColumnarSimulator(g, seed=0)
        # For every incidence slot (owner -> neighbour), the reverse lookup
        # must land on the slot owned by the neighbour pointing back.
        slots = net.receiver_slots(src=net.slot_owner, dst=net.adj)
        assert np.array_equal(net.slot_owner[slots], net.adj)
        assert np.array_equal(net.adj[slots], net.slot_owner)
        with pytest.raises(SimulationError):
            net.receiver_slots(src=np.array([0]), dst=np.array([15]))

    def test_concat_ranges(self):
        starts = np.array([5, 0, 9, 9])
        counts = np.array([3, 0, 2, 1])
        assert concat_ranges(starts, counts).tolist() == [5, 6, 7, 9, 10, 9]
        assert concat_ranges(np.array([], dtype=np.int64), np.array([], dtype=np.int64)).size == 0

    def test_node_rngs_match_reference_spawn(self):
        """Same seed normalisation: per-node streams agree across engines."""
        g = gen.cycle_graph(6)
        reference = DistributedSimulator(g, seed=5)
        columnar = ColumnarSimulator(g, seed=5)
        ref_draws = [ctx.rng.random() for ctx in reference.contexts]
        col_draws = [rng.random() for rng in columnar.node_rngs]
        assert ref_draws == col_draws
