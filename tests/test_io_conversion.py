"""Tests for repro.graphs.io and repro.graphs.conversion."""

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graphs.conversion import (
    from_laplacian,
    from_networkx,
    from_scipy_adjacency,
    to_networkx,
    to_scipy_adjacency,
    to_scipy_laplacian,
)
from repro.graphs.graph import Graph
from repro.graphs.io import load_npz, read_edge_list, save_npz, write_edge_list


class TestEdgeListIO:
    def test_roundtrip(self, weighted_er_graph, tmp_path):
        path = tmp_path / "graph.txt"
        write_edge_list(weighted_er_graph, path)
        loaded = read_edge_list(path)
        assert loaded.same_edge_set(weighted_er_graph)

    def test_roundtrip_empty_graph(self, tmp_path):
        path = tmp_path / "empty.txt"
        write_edge_list(Graph(4), path)
        loaded = read_edge_list(path)
        assert loaded.num_vertices == 4
        assert loaded.num_edges == 0

    def test_unweighted_lines_default_to_one(self, tmp_path):
        path = tmp_path / "plain.txt"
        path.write_text("# 3 2\n0 1\n1 2\n")
        loaded = read_edge_list(path)
        assert np.allclose(loaded.edge_weights, 1.0)

    def test_missing_header_infers_vertices(self, tmp_path):
        path = tmp_path / "nohdr.txt"
        path.write_text("0 4 2.0\n")
        loaded = read_edge_list(path)
        assert loaded.num_vertices == 5

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("# 3 1\n0 1 2.0 extra stuff\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "comments.txt"
        path.write_text("# 3 1\n\n# a comment\n0 1 1.5\n")
        loaded = read_edge_list(path)
        assert loaded.num_edges == 1


class TestNpzIO:
    def test_roundtrip(self, weighted_er_graph, tmp_path):
        path = tmp_path / "graph.npz"
        save_npz(weighted_er_graph, path)
        loaded = load_npz(path)
        assert loaded.same_edge_set(weighted_er_graph)
        assert loaded.num_vertices == weighted_er_graph.num_vertices

    def test_missing_arrays_raise(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, u=np.array([0]))
        with pytest.raises(GraphError):
            load_npz(path)


class TestNetworkxConversion:
    def test_roundtrip(self, weighted_er_graph):
        nx_graph = to_networkx(weighted_er_graph)
        back = from_networkx(nx_graph)
        assert back.same_edge_set(weighted_er_graph)

    def test_to_networkx_node_count_preserved(self):
        g = Graph(6, [0], [1], [1.0])  # isolated vertices must survive
        nx_graph = to_networkx(g)
        assert nx_graph.number_of_nodes() == 6

    def test_multigraph_mode(self, triangle_graph):
        doubled = triangle_graph + triangle_graph
        multi = to_networkx(doubled, coalesce=False)
        assert multi.number_of_edges() == 6

    def test_from_networkx_skips_self_loops(self):
        nx_graph = nx.Graph()
        nx_graph.add_edge(0, 0)
        nx_graph.add_edge(0, 1, weight=2.0)
        g = from_networkx(nx_graph)
        assert g.num_edges == 1

    def test_from_networkx_default_weight(self):
        nx_graph = nx.Graph()
        nx_graph.add_edge(0, 1)
        g = from_networkx(nx_graph)
        assert g.edge_weights[0] == pytest.approx(1.0)

    def test_laplacians_agree_with_networkx(self, small_er_graph):
        ours = small_er_graph.laplacian().toarray()
        theirs = nx.laplacian_matrix(
            to_networkx(small_er_graph), nodelist=range(small_er_graph.num_vertices)
        ).toarray()
        assert np.allclose(ours, theirs)


class TestScipyConversion:
    def test_adjacency_roundtrip(self, weighted_er_graph):
        adj = to_scipy_adjacency(weighted_er_graph)
        back = from_scipy_adjacency(adj)
        assert back.same_edge_set(weighted_er_graph)

    def test_laplacian_roundtrip(self, weighted_er_graph):
        lap = to_scipy_laplacian(weighted_er_graph)
        back = from_laplacian(lap)
        assert back.same_edge_set(weighted_er_graph)

    def test_from_laplacian_rejects_positive_offdiagonal(self):
        mat = np.array([[1.0, 1.0], [1.0, 1.0]])
        with pytest.raises(GraphError):
            from_laplacian(mat)

    def test_from_laplacian_rejects_rectangular(self):
        import scipy.sparse as sp

        with pytest.raises(GraphError):
            from_laplacian(sp.csr_matrix(np.zeros((2, 3))))
