"""Resilience-layer tests: failure policies, checkpoints, solver statuses.

Covers the policy vocabulary (`repro.parallel.failure`), the checkpoint
journal behind ``sparsify_many(checkpoint=...)``, the blocked solver's
per-column :class:`SolveStatus` detection, and the input-validation
hardening (non-finite edge weights / right-hand sides).  The end-to-end
fault-injection scenarios live in ``test_faults.py`` (``-m faults``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import sparsify_many
from repro.core.checkpoint import BatchJournal, batch_graph_digest
from repro.core.config import SparsifierConfig
from repro.core.distributed_sparsify import distributed_parallel_sample
from repro.exceptions import (
    BackendError,
    CheckpointError,
    ConvergenceError,
    GraphError,
)
from repro.graphs import generators
from repro.graphs.graph import Graph
from repro.linalg.cg import SolveStatus, laplacian_solve_many
from repro.parallel.backends import get_backend
from repro.parallel.failure import FailurePolicy, FailureRecord, backoff_delay
from repro.testing.faults import NaNPoisonedOperator


def _identity(x):
    return x


def _always_boom(x):
    raise ValueError(f"permanent failure on {x}")


def _flaky(x, index=0, attempt=1):
    """Attempt-aware item: fails on attempt 1, succeeds from attempt 2."""
    if attempt == 1:
        raise ValueError(f"transient failure on item {index}")
    return x * 10


_flaky.__repro_attempt_aware__ = True


def _slow(x):
    import time

    time.sleep(0.05)
    return x


FAST_RETRY = dict(backoff_base=0.0, jitter=0.0)


class TestFailurePolicyValidation:
    def test_default_is_fail_fast(self):
        policy = FailurePolicy()
        assert policy.is_fail_fast

    def test_retry_policy_is_not_fail_fast(self):
        assert not FailurePolicy(on_error="retry", max_attempts=2).is_fail_fast

    def test_timeout_disables_fail_fast_shortcut(self):
        assert not FailurePolicy(on_error="raise", timeout=1.0).is_fail_fast

    def test_unknown_on_error_rejected(self):
        with pytest.raises(BackendError, match="on_error"):
            FailurePolicy(on_error="ignore")

    def test_zero_attempts_rejected(self):
        with pytest.raises(BackendError, match="max_attempts"):
            FailurePolicy(on_error="retry", max_attempts=0)

    def test_raise_cannot_retry(self):
        with pytest.raises(BackendError, match="fail-fast"):
            FailurePolicy(on_error="raise", max_attempts=3)

    def test_bad_backoff_rejected(self):
        with pytest.raises(BackendError, match="backoff"):
            FailurePolicy(on_error="retry", max_attempts=2, backoff_factor=0.5)

    def test_negative_jitter_rejected(self):
        with pytest.raises(BackendError, match="jitter"):
            FailurePolicy(on_error="retry", max_attempts=2, jitter=-0.1)

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(BackendError, match="timeout"):
            FailurePolicy(timeout=0.0)


class TestBackoffDeterminism:
    def test_first_attempt_never_waits(self):
        policy = FailurePolicy(on_error="retry", max_attempts=5)
        assert backoff_delay(policy, index=3, attempt=1) == 0.0

    def test_same_inputs_same_delay(self):
        policy = FailurePolicy(on_error="retry", max_attempts=5, seed=11)
        delays = [backoff_delay(policy, index=2, attempt=3) for _ in range(4)]
        assert len(set(delays)) == 1

    def test_zero_jitter_is_exact_exponential(self):
        policy = FailurePolicy(
            on_error="retry", max_attempts=6,
            backoff_base=0.1, backoff_factor=2.0, backoff_max=100.0, jitter=0.0,
        )
        assert backoff_delay(policy, 0, 2) == pytest.approx(0.1)
        assert backoff_delay(policy, 0, 3) == pytest.approx(0.2)
        assert backoff_delay(policy, 0, 4) == pytest.approx(0.4)

    def test_backoff_cap_applies(self):
        policy = FailurePolicy(
            on_error="retry", max_attempts=20,
            backoff_base=1.0, backoff_factor=10.0, backoff_max=2.5, jitter=0.0,
        )
        assert backoff_delay(policy, 0, 10) == pytest.approx(2.5)

    def test_jitter_bounded_and_index_dependent(self):
        policy = FailurePolicy(
            on_error="retry", max_attempts=5,
            backoff_base=0.1, backoff_factor=1.0, jitter=0.5, seed=0,
        )
        d1 = backoff_delay(policy, index=1, attempt=2)
        d2 = backoff_delay(policy, index=2, attempt=2)
        for d in (d1, d2):
            assert 0.1 <= d <= 0.1 * 1.5
        assert d1 != d2


class TestMapOutcomes:
    def test_retry_recovers_transient_failures(self):
        backend = get_backend("serial")
        policy = FailurePolicy(on_error="retry", max_attempts=2, **FAST_RETRY)
        outcome = backend.map_outcomes(_flaky, [0, 1, 2], policy=policy)
        assert outcome.values == [0, 10, 20]
        assert outcome.attempts == [2, 2, 2]
        assert outcome.all_succeeded

    def test_retry_exhausted_raises_last_error(self):
        backend = get_backend("serial")
        policy = FailurePolicy(on_error="retry", max_attempts=2, **FAST_RETRY)
        with pytest.raises(ValueError, match="permanent failure"):
            backend.map_outcomes(_always_boom, [0, 1], policy=policy)

    def test_collect_records_failures_and_continues(self):
        backend = get_backend("serial")
        policy = FailurePolicy(on_error="collect", max_attempts=2, **FAST_RETRY)
        outcome = backend.map_outcomes(_always_boom, [7, 8], policy=policy)
        assert outcome.values == [None, None]
        assert outcome.num_failed == 2
        assert not outcome.all_succeeded
        record = outcome.failures[0]
        assert isinstance(record, FailureRecord)
        assert record.describe() == (0, "ValueError", "permanent failure on 7", 2)
        assert record.elapsed >= 0.0
        assert record.to_dict()["error_type"] == "ValueError"

    def test_collect_mixed_success_and_failure(self):
        backend = get_backend("serial")
        policy = FailurePolicy(on_error="collect", max_attempts=1)
        outcome = backend.map_outcomes(
            lambda x: x * 2 if x != 1 else (_ for _ in ()).throw(RuntimeError("no")),
            [0, 1, 2],
            policy=policy,
        )
        assert outcome.values == [0, None, 4]
        assert [r.index for r in outcome.failures] == [1]
        assert outcome.successful_values() == [0, 4]

    def test_soft_timeout_counts_as_failure(self):
        backend = get_backend("serial")
        policy = FailurePolicy(
            on_error="collect", max_attempts=1, timeout=0.005, **FAST_RETRY
        )
        outcome = backend.map_outcomes(_slow, [0], policy=policy)
        # The sleep is 10x the soft timeout: the attempt must be discarded.
        assert outcome.values == [None]
        assert outcome.num_failed == 1
        assert outcome.failures[0].error_type == "WorkerTimeoutError"

    def test_map_with_policy_returns_values_only(self):
        backend = get_backend("serial")
        policy = FailurePolicy(on_error="collect", max_attempts=1)
        values = backend.map(_identity, [1, 2, 3], policy=policy)
        assert values == [1, 2, 3]


class TestCheckpointJournal:
    @pytest.fixture()
    def graphs(self):
        return [
            generators.erdos_renyi_graph(30, 0.3, seed=i, ensure_connected=True)
            for i in range(3)
        ]

    def _edges(self, result):
        g = result.sparsifier
        return (g.edge_u.tolist(), g.edge_v.tolist(), g.edge_weights.tolist())

    def test_resume_skips_completed_jobs_bit_identically(self, graphs, tmp_path):
        journal = tmp_path / "batch.jsonl"
        first = sparsify_many(graphs, epsilon=0.5, seed=7, checkpoint=journal)
        assert first.resumed_jobs == 0
        second = sparsify_many(graphs, epsilon=0.5, seed=7, checkpoint=journal)
        assert second.resumed_jobs == len(graphs)
        for a, b in zip(first.results, second.results):
            assert self._edges(a) == self._edges(b)

    def test_partial_journal_resumes_prefix(self, graphs, tmp_path):
        journal = tmp_path / "batch.jsonl"
        full = sparsify_many(graphs, epsilon=0.5, seed=7, checkpoint=journal)
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(lines[:2]) + "\n")  # header + job 0
        resumed = sparsify_many(graphs, epsilon=0.5, seed=7, checkpoint=journal)
        assert resumed.resumed_jobs == 1
        for a, b in zip(full.results, resumed.results):
            assert self._edges(a) == self._edges(b)

    def test_torn_trailing_line_is_dropped(self, graphs, tmp_path):
        journal = tmp_path / "batch.jsonl"
        sparsify_many(graphs, epsilon=0.5, seed=7, checkpoint=journal)
        with open(journal, "a") as handle:
            handle.write('{"kind": "job", "index": 2, "resu')  # crash mid-append
        resumed = sparsify_many(graphs, epsilon=0.5, seed=7, checkpoint=journal)
        assert resumed.resumed_jobs == len(graphs)

    def test_digest_mismatch_refuses_resume(self, graphs, tmp_path):
        journal = tmp_path / "batch.jsonl"
        sparsify_many(graphs, epsilon=0.5, seed=7, checkpoint=journal)
        different = [
            generators.erdos_renyi_graph(30, 0.3, seed=100 + i, ensure_connected=True)
            for i in range(3)
        ]
        with pytest.raises(CheckpointError, match="digest"):
            sparsify_many(different, epsilon=0.5, seed=7, checkpoint=journal)

    def test_batch_shape_mismatch_refuses_resume(self, graphs, tmp_path):
        journal = tmp_path / "batch.jsonl"
        sparsify_many(graphs, epsilon=0.5, seed=7, checkpoint=journal)
        with pytest.raises(CheckpointError, match="different"):
            sparsify_many(graphs, epsilon=0.25, seed=7, checkpoint=journal)

    def test_headerless_file_refused(self, graphs, tmp_path):
        journal = tmp_path / "batch.jsonl"
        journal.write_text('{"kind": "job", "index": 0}\n{"kind": "job", "index": 1}\n')
        with pytest.raises(CheckpointError, match="header"):
            BatchJournal(journal, epsilon=0.5, rho=4.0, num_jobs=3).load_completed(graphs)

    def test_digest_is_content_addressed(self, graphs):
        assert batch_graph_digest(graphs[0]) == batch_graph_digest(graphs[0])
        assert batch_graph_digest(graphs[0]) != batch_graph_digest(graphs[1])


class TestSolveStatusDetection:
    @pytest.fixture()
    def laplacian_and_rhs(self, small_er_graph):
        lap = small_er_graph.laplacian()
        rng = np.random.default_rng(5)
        rhs = rng.standard_normal((small_er_graph.num_vertices, 4))
        rhs -= rhs.mean(axis=0)  # keep RHS in the Laplacian's range
        return lap, rhs

    def test_converged_status_on_healthy_solve(self, laplacian_and_rhs):
        lap, rhs = laplacian_and_rhs
        result = laplacian_solve_many(lap, rhs, tol=1e-8)
        assert result.all_converged
        assert np.all(result.status == int(SolveStatus.CONVERGED))
        assert not result.failures

    def test_raise_on_failure_carries_column_failures(self, laplacian_and_rhs):
        lap, rhs = laplacian_and_rhs
        with pytest.raises(ConvergenceError) as excinfo:
            laplacian_solve_many(
                lap, rhs, tol=1e-30, max_iterations=3, raise_on_failure=True
            )
        failures = excinfo.value.failures
        assert failures
        for failure in failures:
            assert failure.status == SolveStatus.MAX_ITERATIONS
            assert failure.iterations == 3
            assert np.isfinite(failure.residual)
        # The message names the counts and the worst column.
        assert "columns failed" in str(excinfo.value)

    def test_non_finite_rhs_rejected(self, laplacian_and_rhs):
        lap, rhs = laplacian_and_rhs
        poisoned = rhs.copy()
        poisoned[0, 2] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            laplacian_solve_many(lap, poisoned)

    def test_nan_preconditioner_detected_as_not_finite(self, laplacian_and_rhs):
        lap, rhs = laplacian_and_rhs
        poisoned = NaNPoisonedOperator(lambda block: block, healthy_applications=0)
        result = laplacian_solve_many(lap, rhs, preconditioner=poisoned)
        assert not result.all_converged
        assert np.all(result.status[~result.converged] == int(SolveStatus.NOT_FINITE))

    def test_breakdown_on_non_psd_matrix(self):
        n = 12
        matrix = -np.eye(n)
        rhs = np.ones((n, 2))
        result = laplacian_solve_many(matrix, rhs, deflate=False)
        assert not result.all_converged
        assert np.all(result.status == int(SolveStatus.BREAKDOWN))

    def test_divergence_limit_freezes_columns(self, laplacian_and_rhs):
        lap, rhs = laplacian_and_rhs
        result = laplacian_solve_many(lap, rhs, tol=1e-12, divergence_limit=1e-6)
        assert not result.all_converged
        assert np.any(result.status == int(SolveStatus.DIVERGED))

    def test_stagnation_detected_on_unreachable_tolerance(self, laplacian_and_rhs):
        lap, rhs = laplacian_and_rhs
        result = laplacian_solve_many(lap, rhs, tol=1e-30, stagnation_window=5)
        assert not result.all_converged
        assert np.all(result.status[~result.converged] == int(SolveStatus.STAGNATED))
        # Stagnation fires long before the 10n iteration cap.
        assert int(result.iterations.max()) < 10 * lap.shape[0]

    def test_work_budget_exhaustion(self, laplacian_and_rhs):
        lap, rhs = laplacian_and_rhs
        result = laplacian_solve_many(lap, rhs, tol=1e-12, work_budget=float(lap.nnz))
        assert not result.all_converged
        assert np.any(result.status == int(SolveStatus.BUDGET_EXHAUSTED))

    def test_invalid_work_budget_rejected(self, laplacian_and_rhs):
        lap, rhs = laplacian_and_rhs
        with pytest.raises(ValueError, match="work_budget"):
            laplacian_solve_many(lap, rhs, work_budget=0.0)

    def test_column_failure_report_via_failures_property(self, laplacian_and_rhs):
        lap, rhs = laplacian_and_rhs
        result = laplacian_solve_many(lap, rhs, tol=1e-30, max_iterations=2)
        failures = result.failures
        assert len(failures) == rhs.shape[1]
        assert {f.column for f in failures} == set(range(rhs.shape[1]))


class TestValidationHardening:
    def test_nan_edge_weight_rejected(self):
        with pytest.raises(GraphError, match="finite"):
            Graph(3, [0, 1], [1, 2], [1.0, float("nan")])

    def test_inf_edge_weight_rejected(self):
        with pytest.raises(GraphError, match="finite"):
            Graph(3, [0, 1], [1, 2], [np.inf, 1.0])

    def test_nonpositive_edge_weight_still_rejected(self):
        with pytest.raises(GraphError, match="positive"):
            Graph(3, [0, 1], [1, 2], [1.0, 0.0])


class TestDistributedPolicyRouting:
    def test_sharded_fanout_rejects_collect(self, small_er_graph):
        config = SparsifierConfig(num_shards=2)
        policy = FailurePolicy(on_error="collect", max_attempts=2, **FAST_RETRY)
        with pytest.raises(BackendError, match="collect"):
            distributed_parallel_sample(
                small_er_graph, epsilon=0.5, config=config, seed=3,
                failure_policy=policy,
            )

    def test_sharded_fanout_accepts_retry(self, small_er_graph):
        config = SparsifierConfig(num_shards=2)
        policy = FailurePolicy(on_error="retry", max_attempts=2, **FAST_RETRY)
        baseline = distributed_parallel_sample(
            small_er_graph, epsilon=0.5, config=config, seed=3
        )
        with_policy = distributed_parallel_sample(
            small_er_graph, epsilon=0.5, config=config, seed=3,
            failure_policy=policy,
        )
        assert np.array_equal(
            baseline.sparsifier.edge_weights, with_policy.sparsifier.edge_weights
        )
