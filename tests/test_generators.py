"""Tests for repro.graphs.generators."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graphs import generators as gen
from repro.graphs.connectivity import is_connected


class TestDeterministicGenerators:
    def test_path_graph(self):
        g = gen.path_graph(5)
        assert g.num_vertices == 5
        assert g.num_edges == 4
        assert is_connected(g)

    def test_path_graph_single_vertex(self):
        assert gen.path_graph(1).num_edges == 0

    def test_path_rejects_zero(self):
        with pytest.raises(GraphError):
            gen.path_graph(0)

    def test_cycle_graph(self):
        g = gen.cycle_graph(6)
        assert g.num_edges == 6
        assert np.all(g.degrees() == 2)

    def test_cycle_rejects_small(self):
        with pytest.raises(GraphError):
            gen.cycle_graph(2)

    def test_star_graph(self):
        g = gen.star_graph(7)
        degrees = g.degrees()
        assert degrees[0] == 6
        assert np.all(degrees[1:] == 1)

    def test_complete_graph(self):
        g = gen.complete_graph(8)
        assert g.num_edges == 8 * 7 // 2
        assert np.all(g.degrees() == 7)

    def test_grid_graph_counts(self):
        g = gen.grid_graph(4, 5)
        assert g.num_vertices == 20
        assert g.num_edges == 4 * 4 + 3 * 5  # horizontal + vertical
        assert is_connected(g)

    def test_grid_graph_rejects_bad_dims(self):
        with pytest.raises(GraphError):
            gen.grid_graph(0, 3)

    def test_grid_3d_counts(self):
        g = gen.grid_graph_3d(3, 3, 3)
        assert g.num_vertices == 27
        assert g.num_edges == 3 * (2 * 3 * 3)
        assert is_connected(g)

    def test_torus_graph_regular(self):
        g = gen.torus_graph(4, 5)
        assert g.num_vertices == 20
        assert np.all(g.coalesce().degrees() == 4)

    def test_torus_rejects_small(self):
        with pytest.raises(GraphError):
            gen.torus_graph(2, 5)

    def test_dumbbell_graph(self):
        g = gen.dumbbell_graph(5, path_length=3)
        assert is_connected(g)
        # Two cliques of 10 edges each plus a 3-edge path.
        assert g.num_edges == 2 * 10 + 3

    def test_barbell_graph(self):
        g = gen.barbell_graph(4)
        assert g.num_edges == 2 * 6 + 1
        assert is_connected(g)

    def test_dumbbell_rejects_bad_params(self):
        with pytest.raises(GraphError):
            gen.dumbbell_graph(1)
        with pytest.raises(GraphError):
            gen.dumbbell_graph(4, path_length=0)


class TestRandomGenerators:
    def test_erdos_renyi_reproducible(self):
        a = gen.erdos_renyi_graph(50, 0.2, seed=3)
        b = gen.erdos_renyi_graph(50, 0.2, seed=3)
        assert a.same_edge_set(b)

    def test_erdos_renyi_density(self):
        g = gen.erdos_renyi_graph(100, 0.3, seed=0)
        expected = 0.3 * 100 * 99 / 2
        assert 0.7 * expected < g.num_edges < 1.3 * expected

    def test_erdos_renyi_connected_flag(self):
        g = gen.erdos_renyi_graph(80, 0.01, seed=1, ensure_connected=True)
        assert is_connected(g)

    def test_erdos_renyi_weight_range(self):
        g = gen.erdos_renyi_graph(40, 0.3, seed=2, weight_range=(2.0, 3.0))
        assert g.edge_weights.min() >= 2.0
        assert g.edge_weights.max() <= 3.0

    def test_erdos_renyi_rejects_bad_p(self):
        with pytest.raises(GraphError):
            gen.erdos_renyi_graph(10, 1.5)

    def test_erdos_renyi_extreme_probabilities(self):
        assert gen.erdos_renyi_graph(20, 0.0, seed=0).num_edges == 0
        assert gen.erdos_renyi_graph(10, 1.0, seed=0).num_edges == 45

    def test_random_regular_degrees(self):
        g = gen.random_regular_graph(30, 4, seed=5)
        assert np.all(g.degrees() == 4)

    def test_random_regular_rejects_odd_product(self):
        with pytest.raises(GraphError):
            gen.random_regular_graph(5, 3)

    def test_random_regular_rejects_degree_too_large(self):
        with pytest.raises(GraphError):
            gen.random_regular_graph(5, 5)

    def test_banded_graph_structure(self):
        g = gen.banded_graph(10, 3)
        # Each vertex u joins u+1..u+3 where in range: 9 + 8 + 7 edges.
        assert g.num_edges == 24
        assert np.all(g.edge_v - g.edge_u <= 3)
        assert np.all(g.edge_weights == 1.0)

    def test_banded_graph_weighted_reproducible(self):
        a = gen.banded_graph(20, 2, weight_range=(0.5, 2.0), seed=7)
        b = gen.banded_graph(20, 2, weight_range=(0.5, 2.0), seed=7)
        assert np.array_equal(a.edge_weights, b.edge_weights)
        assert np.all((a.edge_weights >= 0.5) & (a.edge_weights <= 2.0))

    def test_banded_graph_rejects_bad_params(self):
        with pytest.raises(GraphError):
            gen.banded_graph(0, 2)
        with pytest.raises(GraphError):
            gen.banded_graph(5, 0)
        with pytest.raises(GraphError):
            gen.banded_graph(5, 2, weight_range=(0.0, 1.0))

    def test_barabasi_albert_size(self):
        g = gen.barabasi_albert_graph(60, 3, seed=4)
        assert g.num_vertices == 60
        assert is_connected(g)
        seed_clique_edges = 4 * 3 // 2
        assert g.num_edges == seed_clique_edges + (60 - 4) * 3

    def test_barabasi_albert_rejects_bad_params(self):
        with pytest.raises(GraphError):
            gen.barabasi_albert_graph(3, 3)
        with pytest.raises(GraphError):
            gen.barabasi_albert_graph(10, 0)

    def test_random_geometric_weights_positive(self):
        g = gen.random_geometric_graph(60, 0.3, seed=6)
        assert np.all(g.edge_weights > 0)

    def test_random_geometric_rejects_bad_radius(self):
        with pytest.raises(GraphError):
            gen.random_geometric_graph(10, 0.0)

    def test_random_weighted(self):
        base = gen.grid_graph(5, 5)
        weighted = gen.random_weighted(base, 1.0, 2.0, seed=0)
        assert weighted.num_edges == base.num_edges
        assert weighted.edge_weights.min() >= 1.0
        assert weighted.edge_weights.max() <= 2.0

    def test_random_spanning_tree_plus_edge_count(self):
        g = gen.random_spanning_tree_plus(40, 25, seed=9)
        assert g.num_vertices == 40
        assert g.num_edges == 39 + 25
        assert is_connected(g)

    def test_random_spanning_tree_plus_caps_extra_edges(self):
        g = gen.random_spanning_tree_plus(5, 100, seed=1)
        assert g.num_edges <= 10


class TestImageAffinity:
    def test_shape_and_weights(self):
        g = gen.image_affinity_graph(10, 12, beta=5.0, seed=0)
        assert g.num_vertices == 120
        base = gen.grid_graph(10, 12)
        assert g.num_edges == base.num_edges
        assert np.all(g.edge_weights > 0)
        assert np.all(g.edge_weights <= 1.0)

    def test_custom_image(self):
        image = np.zeros((4, 4))
        image[:, 2:] = 1.0  # sharp vertical edge
        g = gen.image_affinity_graph(4, 4, beta=10.0, image=image)
        weights = g.edge_weight_map()
        # Edges across the intensity boundary are much weaker than within regions.
        across = weights[(1, 2)]  # vertices 1 and 2 are columns 1,2 of row 0
        within = weights[(0, 1)]
        assert across < within / 10

    def test_image_shape_mismatch(self):
        with pytest.raises(GraphError):
            gen.image_affinity_graph(4, 4, image=np.zeros((3, 3)))

    def test_image_kinds(self):
        for kind in ("blobs", "stripes", "noise"):
            g = gen.image_affinity_graph(6, 6, seed=1, kind=kind)
            assert g.num_edges > 0

    def test_unknown_kind(self):
        with pytest.raises(GraphError):
            gen.image_affinity_graph(4, 4, kind="swirl")

    def test_min_weight_floor(self):
        g = gen.image_affinity_graph(8, 8, beta=1000.0, seed=0, kind="noise", min_weight=1e-3)
        assert g.edge_weights.min() >= 1e-3
