"""Tests for the pluggable execution-backend layer (repro.parallel.backends)."""

import threading
import time

import numpy as np
import pytest

from repro.core.config import SparsifierConfig
from repro.core.distributed_sparsify import distributed_parallel_sparsify
from repro.core.sparsify import parallel_sparsify
from repro.exceptions import BackendError
from repro.graphs import generators as gen
from repro.parallel.backends import (
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    get_backend,
    register_backend,
    set_default_backend,
)


def _square(x):
    return x * x


def _add_shared(x, shared):
    return x + shared["offset"]


def _boom(x):
    if x == 0:
        raise RuntimeError("job failed")
    time.sleep(0.01)
    return x


ALL_BACKENDS = ["serial", "thread", "process"]


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert {"serial", "thread", "process"} <= set(available_backends())

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_get_backend_by_name(self, name):
        backend = get_backend(name, max_workers=2)
        assert backend.name == name
        assert backend.max_workers == 2

    def test_get_backend_default_is_serial(self):
        assert get_backend().name == "serial"

    def test_workers_without_backend_refuses_silent_serial(self):
        # max_workers > 1 against the implicit serial default would run
        # everything sequentially while the caller believes otherwise.
        with pytest.raises(BackendError, match="serial"):
            get_backend(None, max_workers=8)
        # Explicitly naming 'serial' is a deliberate choice and stays OK.
        assert get_backend("serial", max_workers=8).name == "serial"
        previous = set_default_backend("thread", max_workers=2)
        try:
            assert get_backend(None, max_workers=8).max_workers == 8
        finally:
            set_default_backend(previous)

    def test_get_backend_passthrough_instance(self):
        backend = ThreadBackend(max_workers=3)
        assert get_backend(backend) is backend
        rebuilt = get_backend(backend, max_workers=5)
        assert isinstance(rebuilt, ThreadBackend) and rebuilt.max_workers == 5

    def test_unknown_name_raises(self):
        with pytest.raises(BackendError):
            get_backend("quantum")

    def test_bad_spec_raises(self):
        with pytest.raises(BackendError):
            get_backend(42)

    def test_invalid_max_workers(self):
        with pytest.raises(BackendError):
            ThreadBackend(max_workers=0)

    def test_set_default_backend_round_trip(self):
        previous = set_default_backend("thread", max_workers=2)
        try:
            assert get_backend().name == "thread"
            assert get_backend().max_workers == 2
        finally:
            set_default_backend(previous)
        assert get_backend().name == "serial"

    def test_register_backend_rejects_non_backend(self):
        with pytest.raises(BackendError):
            register_backend(int)

    def test_register_custom_backend(self):
        @register_backend
        class _EchoBackend(SerialBackend):
            name = "echo-test"

        try:
            assert "echo-test" in available_backends()
            assert get_backend("echo-test").map(_square, [3]) == [9]
        finally:
            from repro.parallel import backends as backends_module

            backends_module._BACKEND_CLASSES.pop("echo-test", None)


class TestMapSemantics:
    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_results_preserve_input_order(self, name):
        backend = get_backend(name, max_workers=4)
        assert backend.map(_square, list(range(10))) == [x * x for x in range(10)]

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_empty_items(self, name):
        assert get_backend(name, max_workers=2).map(_square, []) == []

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_shared_payload(self, name):
        backend = get_backend(name, max_workers=2)
        out = backend.map(_add_shared, [1, 2, 3], shared={"offset": 10})
        assert out == [11, 12, 13]

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_first_error_propagates(self, name):
        backend = get_backend(name, max_workers=2)
        with pytest.raises(RuntimeError, match="job failed"):
            backend.map(_boom, [0, 1, 2])

    def test_starmap_and_run_all(self):
        backend = ThreadBackend(max_workers=2)
        assert backend.starmap(pow, [(2, 3), (3, 2)]) == [8, 9]
        assert backend.run_all([lambda: 1, lambda: 2]) == [1, 2]

    def test_thread_error_cancels_pending_items(self):
        # One worker, failing first item, slow tail items.  Without
        # fail-fast cancellation every tail item would run during pool
        # shutdown; with it only the item(s) already dequeued may slip
        # through before the caller cancels the rest.
        executed = []
        lock = threading.Lock()

        def job(x):
            if x == 0:
                raise RuntimeError("fail first")
            time.sleep(0.02)
            with lock:
                executed.append(x)
            return x

        backend = ThreadBackend(max_workers=1)
        with pytest.raises(RuntimeError, match="fail first"):
            backend.map(job, list(range(30)))
        assert len(executed) < 29

    def test_process_backend_shared_pickled_payload(self):
        backend = ProcessBackend(max_workers=2)
        shared = {"offset": np.int64(5)}
        assert backend.map(_add_shared, [1, 2, 3, 4], shared=shared) == [6, 7, 8, 9]


# Dense enough that a 2-bundle leaves room for sampling even per shard.
DENSE = gen.erdos_renyi_graph(96, 0.25, seed=13, ensure_connected=True)
SHARDED = dict(bundle_t=2, num_shards=4)
BACKEND_MATRIX = [
    ("serial", 1),
    ("serial", 4),
    ("thread", 1),
    ("thread", 4),
    ("process", 1),
    ("process", 4),
]


def _edge_tuple(graph):
    g = graph.coalesce()
    return (g.edge_u.tolist(), g.edge_v.tolist(), g.edge_weights.tolist())


class TestBackendDeterminism:
    """Same seed => bit-identical sparsifiers on every backend/worker count."""

    @pytest.fixture(scope="class")
    def pram_reference(self):
        config = SparsifierConfig.practical(backend="serial", max_workers=1, **SHARDED)
        return _edge_tuple(parallel_sparsify(DENSE, epsilon=0.5, rho=4, config=config, seed=11).sparsifier)

    @pytest.fixture(scope="class")
    def distributed_reference(self):
        config = SparsifierConfig.practical(backend="serial", max_workers=1, **SHARDED)
        return _edge_tuple(
            distributed_parallel_sparsify(DENSE, epsilon=0.5, rho=4, config=config, seed=11).sparsifier
        )

    @pytest.mark.parametrize("backend,workers", BACKEND_MATRIX)
    def test_parallel_sparsify_identical(self, backend, workers, pram_reference):
        config = SparsifierConfig.practical(backend=backend, max_workers=workers, **SHARDED)
        result = parallel_sparsify(DENSE, epsilon=0.5, rho=4, config=config, seed=11)
        assert _edge_tuple(result.sparsifier) == pram_reference

    @pytest.mark.parametrize("backend,workers", BACKEND_MATRIX)
    def test_distributed_sparsify_identical(self, backend, workers, distributed_reference):
        config = SparsifierConfig.practical(backend=backend, max_workers=workers, **SHARDED)
        result = distributed_parallel_sparsify(DENSE, epsilon=0.5, rho=4, config=config, seed=11)
        assert _edge_tuple(result.sparsifier) == distributed_reference

    def test_worker_count_does_not_change_batch_output(self):
        graphs = [gen.erdos_renyi_graph(40, 0.2, seed=i, ensure_connected=True) for i in range(4)]
        from repro.core.batch import sparsify_many

        one = sparsify_many(graphs, epsilon=0.5, rho=4, seed=3, backend="thread", max_workers=1)
        four = sparsify_many(graphs, epsilon=0.5, rho=4, seed=3, backend="thread", max_workers=4)
        for a, b in zip(one.results, four.results):
            assert _edge_tuple(a.sparsifier) == _edge_tuple(b.sparsifier)


class TestShardedPipelines:
    def test_sharded_sample_output_is_valid_sparsifier(self):
        from repro.core.certificates import certify_approximation
        from repro.graphs.connectivity import is_connected

        config = SparsifierConfig.practical(**SHARDED)
        result = parallel_sparsify(DENSE, epsilon=0.5, rho=4, config=config, seed=2)
        assert is_connected(result.sparsifier)
        cert = certify_approximation(DENSE, result.sparsifier)
        assert 0 < cert.lower <= cert.upper < 5

    def test_sharded_distributed_cost_uses_concurrent_rounds(self):
        from repro.core.distributed_sparsify import distributed_parallel_sample

        sharded = distributed_parallel_sample(
            DENSE, epsilon=0.5, config=SparsifierConfig.practical(bundle_t=2, num_shards=4), seed=5
        )
        serial = distributed_parallel_sample(
            DENSE, epsilon=0.5, config=SparsifierConfig.practical(bundle_t=2), seed=5
        )
        assert sharded.num_shards == 4
        assert sharded.boundary_edges > 0
        # Concurrent shard networks: rounds compose with max (so no worse
        # than the sequential whole-graph protocol), and communication
        # drops because boundary edges never enter a protocol.
        assert sharded.cost.rounds <= serial.cost.rounds
        assert sharded.cost.messages < serial.cost.messages

    def test_shard_count_is_part_of_the_algorithm(self):
        config_1 = SparsifierConfig.practical(bundle_t=2, num_shards=1)
        config_4 = SparsifierConfig.practical(bundle_t=2, num_shards=4)
        a = parallel_sparsify(DENSE, epsilon=0.5, rho=4, config=config_1, seed=9)
        b = parallel_sparsify(DENSE, epsilon=0.5, rho=4, config=config_4, seed=9)
        # Different shard counts are different (equally valid) algorithms.
        assert _edge_tuple(a.sparsifier) != _edge_tuple(b.sparsifier)

    def test_config_validates_execution_fields(self):
        from repro.exceptions import SparsificationError

        with pytest.raises(SparsificationError):
            SparsifierConfig(num_shards=0)
        with pytest.raises(SparsificationError):
            SparsifierConfig(max_workers=0)
        with pytest.raises(BackendError):
            SparsifierConfig(backend="warp-drive").execution_backend()
