"""Tests for the Graph container (repro.graphs.graph)."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.exceptions import GraphError
from repro.graphs.graph import Graph


class TestConstruction:
    def test_empty_graph(self):
        g = Graph.empty(5)
        assert g.num_vertices == 5
        assert g.num_edges == 0
        assert g.total_weight == 0.0

    def test_basic_edges(self, triangle_graph):
        assert triangle_graph.num_vertices == 3
        assert triangle_graph.num_edges == 3
        assert triangle_graph.total_weight == pytest.approx(3.0)

    def test_default_unit_weights(self):
        g = Graph(3, [0, 1], [1, 2])
        assert np.allclose(g.edge_weights, 1.0)

    def test_orientation_normalised(self):
        g = Graph(4, [3, 2], [1, 0], [1.0, 2.0])
        assert np.all(g.edge_u < g.edge_v)

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError):
            Graph(3, [0], [0], [1.0])

    def test_rejects_out_of_range(self):
        with pytest.raises(GraphError):
            Graph(3, [0], [3], [1.0])
        with pytest.raises(GraphError):
            Graph(3, [-1], [1], [1.0])

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(GraphError):
            Graph(3, [0], [1], [0.0])
        with pytest.raises(GraphError):
            Graph(3, [0], [1], [-2.0])
        with pytest.raises(GraphError):
            Graph(3, [0], [1], [np.inf])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(GraphError):
            Graph(3, [0, 1], [1], [1.0, 1.0])
        with pytest.raises(GraphError):
            Graph(3, [0], [1], [1.0, 2.0])

    def test_from_edge_list(self):
        g = Graph.from_edge_list(4, [(0, 1), (1, 2, 3.0)])
        assert g.num_edges == 2
        assert g.edge_weight_map()[(1, 2)] == pytest.approx(3.0)

    def test_from_edge_list_rejects_bad_tuple(self):
        with pytest.raises(GraphError):
            Graph.from_edge_list(3, [(0, 1, 1.0, 2.0)])

    def test_from_sparse_adjacency_roundtrip(self, small_er_graph):
        adjacency = small_er_graph.adjacency()
        rebuilt = Graph.from_sparse_adjacency(adjacency)
        assert rebuilt.same_edge_set(small_er_graph)

    def test_from_sparse_adjacency_rejects_rectangular(self):
        with pytest.raises(GraphError):
            Graph.from_sparse_adjacency(sp.csr_matrix(np.ones((2, 3))))

    def test_edge_arrays_readonly(self, triangle_graph):
        with pytest.raises(ValueError):
            triangle_graph.edge_weights[0] = 5.0


class TestAccessors:
    def test_degrees(self, triangle_graph):
        assert np.array_equal(triangle_graph.degrees(), [2, 2, 2])

    def test_weighted_degrees(self, weighted_path):
        assert np.allclose(weighted_path.weighted_degrees(), [1.0, 3.0, 6.0, 4.0])

    def test_has_edge(self, weighted_path):
        assert weighted_path.has_edge(0, 1)
        assert weighted_path.has_edge(1, 0)
        assert not weighted_path.has_edge(0, 3)
        assert not weighted_path.has_edge(2, 2)

    def test_neighbors(self, weighted_path):
        assert np.array_equal(weighted_path.neighbors(1), [0, 2])
        assert np.array_equal(weighted_path.neighbors(0), [1])

    def test_edges_iterator(self, weighted_path):
        edges = list(weighted_path.edges())
        assert edges == [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 4.0)]

    def test_edge_array_shape(self, weighted_path):
        arr = weighted_path.edge_array()
        assert arr.shape == (3, 3)

    def test_edge_keys_unique_for_simple_graph(self, small_er_graph):
        keys = small_er_graph.edge_keys()
        assert len(np.unique(keys)) == small_er_graph.num_edges

    def test_neighbor_lists_consistency(self, small_er_graph):
        indptr, neighbors, weights, edge_ids = small_er_graph.neighbor_lists()
        assert indptr[-1] == 2 * small_er_graph.num_edges
        assert neighbors.shape == weights.shape == edge_ids.shape
        # Degrees derived from indptr match degrees().
        degrees = np.diff(indptr)
        assert np.array_equal(degrees, small_er_graph.degrees())


class TestMatrices:
    def test_laplacian_row_sums_zero(self, small_er_graph):
        lap = small_er_graph.laplacian()
        assert np.allclose(np.asarray(lap.sum(axis=1)).ravel(), 0.0, atol=1e-10)

    def test_laplacian_psd(self, small_er_graph):
        lap = small_er_graph.laplacian().toarray()
        eigenvalues = np.linalg.eigvalsh(lap)
        assert eigenvalues.min() >= -1e-9

    def test_adjacency_symmetric(self, small_er_graph):
        adj = small_er_graph.adjacency()
        assert abs(adj - adj.T).max() < 1e-12

    def test_incidence_factorisation(self, weighted_er_graph):
        incidence = weighted_er_graph.incidence()
        w = sp.diags(weighted_er_graph.edge_weights)
        reconstructed = (incidence.T @ w @ incidence).toarray()
        assert np.allclose(reconstructed, weighted_er_graph.laplacian().toarray())

    def test_quadratic_form_matches_matrix(self, weighted_er_graph, rng):
        x = rng.standard_normal(weighted_er_graph.num_vertices)
        direct = weighted_er_graph.quadratic_form(x)
        via_matrix = float(x @ weighted_er_graph.laplacian() @ x)
        assert direct == pytest.approx(via_matrix, rel=1e-10)

    def test_quadratic_form_wrong_length(self, triangle_graph):
        with pytest.raises(GraphError):
            triangle_graph.quadratic_form(np.zeros(5))

    def test_quadratic_form_constant_vector_zero(self, small_er_graph):
        assert small_er_graph.quadratic_form(np.ones(small_er_graph.num_vertices)) == pytest.approx(0.0)


class TestTransformations:
    def test_select_edges_by_mask(self, weighted_path):
        sub = weighted_path.select_edges(np.array([True, False, True]))
        assert sub.num_edges == 2

    def test_select_edges_by_index(self, weighted_path):
        sub = weighted_path.select_edges(np.array([2]))
        assert sub.num_edges == 1
        assert list(sub.edges())[0] == (2, 3, 4.0)

    def test_select_edges_bad_mask_length(self, weighted_path):
        with pytest.raises(GraphError):
            weighted_path.select_edges(np.array([True]))

    def test_remove_edges(self, weighted_path):
        removed = weighted_path.remove_edges(np.array([True, False, False]))
        assert removed.num_edges == 2
        assert not removed.has_edge(0, 1)

    def test_with_weights(self, weighted_path):
        new = weighted_path.with_weights(np.array([5.0, 5.0, 5.0]))
        assert new.total_weight == pytest.approx(15.0)
        # Original untouched (immutability).
        assert weighted_path.total_weight == pytest.approx(7.0)

    def test_scaled(self, weighted_path):
        doubled = weighted_path.scaled(2.0)
        assert doubled.total_weight == pytest.approx(14.0)

    def test_scaled_rejects_nonpositive(self, weighted_path):
        with pytest.raises(GraphError):
            weighted_path.scaled(0.0)

    def test_operator_mul(self, weighted_path):
        assert (2 * weighted_path).total_weight == pytest.approx(14.0)
        assert (weighted_path * 3).total_weight == pytest.approx(21.0)

    def test_union_concatenates_edges(self, triangle_graph):
        doubled = triangle_graph + triangle_graph
        assert doubled.num_edges == 6
        assert doubled.total_weight == pytest.approx(6.0)

    def test_union_requires_same_vertex_count(self, triangle_graph):
        with pytest.raises(GraphError):
            triangle_graph.union(Graph(4))

    def test_coalesce_merges_parallel_edges(self):
        g = Graph(3, [0, 0, 1], [1, 1, 2], [1.0, 2.0, 3.0])
        merged = g.coalesce()
        assert merged.num_edges == 2
        assert merged.edge_weight_map()[(0, 1)] == pytest.approx(3.0)

    def test_coalesce_preserves_laplacian(self, triangle_graph):
        doubled = triangle_graph + triangle_graph
        assert np.allclose(
            doubled.laplacian().toarray(), doubled.coalesce().laplacian().toarray()
        )

    def test_same_edge_set_true_for_permuted(self):
        a = Graph(4, [0, 1, 2], [1, 2, 3], [1.0, 2.0, 3.0])
        b = Graph(4, [2, 0, 1], [3, 1, 2], [3.0, 1.0, 2.0])
        assert a.same_edge_set(b)
        assert a == b

    def test_same_edge_set_false_for_different_weights(self):
        a = Graph(3, [0], [1], [1.0])
        b = Graph(3, [0], [1], [2.0])
        assert not a.same_edge_set(b)

    def test_graph_unhashable(self, triangle_graph):
        with pytest.raises(TypeError):
            hash(triangle_graph)


class TestGraphProperties:
    """Property-based invariants of the container."""

    @given(
        n=st.integers(min_value=2, max_value=30),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_laplacian_quadratic_form_nonnegative(self, n, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(1, n * (n - 1) // 2 + 1))
        u = rng.integers(0, n, size=m)
        v = rng.integers(0, n, size=m)
        mask = u != v
        if not mask.any():
            return
        g = Graph(n, u[mask], v[mask], rng.uniform(0.1, 5.0, size=mask.sum()))
        x = rng.standard_normal(n)
        assert g.quadratic_form(x) >= -1e-9

    @given(
        n=st.integers(min_value=2, max_value=20),
        seed=st.integers(min_value=0, max_value=10_000),
        factor=st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_scaling_scales_quadratic_form(self, n, seed, factor):
        rng = np.random.default_rng(seed)
        u = rng.integers(0, n, size=3 * n)
        v = rng.integers(0, n, size=3 * n)
        mask = u != v
        if not mask.any():
            return
        g = Graph(n, u[mask], v[mask], rng.uniform(0.1, 2.0, size=mask.sum()))
        x = rng.standard_normal(n)
        assert g.scaled(factor).quadratic_form(x) == pytest.approx(
            factor * g.quadratic_form(x), rel=1e-9, abs=1e-12
        )

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_union_quadratic_form_adds(self, seed):
        rng = np.random.default_rng(seed)
        n = 12
        def random_graph():
            u = rng.integers(0, n, size=20)
            v = rng.integers(0, n, size=20)
            mask = u != v
            return Graph(n, u[mask], v[mask], rng.uniform(0.5, 2.0, size=mask.sum()))
        a, b = random_graph(), random_graph()
        x = rng.standard_normal(n)
        assert (a + b).quadratic_form(x) == pytest.approx(
            a.quadratic_form(x) + b.quadratic_form(x), rel=1e-9, abs=1e-12
        )
