"""Tests for Algorithm 1 (PARALLELSAMPLE)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.certificates import certify_approximation
from repro.core.config import SparsifierConfig
from repro.core.sample import parallel_sample
from repro.exceptions import SparsificationError
from repro.graphs import generators as gen
from repro.graphs.connectivity import is_connected
from repro.graphs.graph import Graph
from repro.parallel.pram import PRAMTracker


PRACTICAL = SparsifierConfig.practical(practical_scale=0.5)


class TestMechanics:
    def test_output_contains_bundle_at_original_weight(self, medium_er_graph):
        result = parallel_sample(medium_er_graph, epsilon=0.5, config=PRACTICAL, seed=0)
        weights = result.sparsifier.edge_weight_map()
        original = medium_er_graph.edge_weight_map()
        for idx in result.bundle_edge_indices:
            u, v = int(medium_er_graph.edge_u[idx]), int(medium_er_graph.edge_v[idx])
            assert weights[(u, v)] >= original[(u, v)] - 1e-12

    def test_sampled_edges_reweighted_by_four(self, medium_er_graph):
        config = PRACTICAL
        result = parallel_sample(medium_er_graph, epsilon=0.5, config=config, seed=1)
        # Edges kept by sampling but not in the bundle carry weight 4 w_e.
        sampled_only = np.setdiff1d(result.sampled_edge_indices, result.bundle_edge_indices)
        if sampled_only.size == 0:
            pytest.skip("no purely-sampled edges this seed")
        weights = result.sparsifier.edge_weight_map()
        for idx in sampled_only[:20]:
            u, v = int(medium_er_graph.edge_u[idx]), int(medium_er_graph.edge_v[idx])
            expected = config.weight_multiplier * medium_er_graph.edge_weights[idx]
            assert weights[(u, v)] == pytest.approx(expected)

    def test_output_edges_subset_of_input_edges(self, medium_er_graph):
        result = parallel_sample(medium_er_graph, epsilon=0.5, config=PRACTICAL, seed=2)
        assert np.all(np.isin(result.sparsifier.edge_keys(), medium_er_graph.edge_keys()))

    def test_non_bundle_edges_kept_at_roughly_quarter_rate(self):
        g = gen.erdos_renyi_graph(150, 0.4, seed=3, ensure_connected=True)
        config = SparsifierConfig.practical(bundle_t=1)
        result = parallel_sample(g, epsilon=0.5, config=config, seed=4)
        outside = g.num_edges - len(result.bundle_edge_indices)
        kept = len(result.sampled_edge_indices)
        rate = kept / outside
        assert 0.18 < rate < 0.33

    def test_expectation_preserves_total_weight(self):
        """E[total weight] is preserved; check the realised value is in a wide band."""
        g = gen.erdos_renyi_graph(150, 0.4, seed=5, ensure_connected=True)
        config = SparsifierConfig.practical(bundle_t=1)
        totals = []
        for seed in range(5):
            result = parallel_sample(g, epsilon=0.5, config=config, seed=seed)
            totals.append(result.sparsifier.total_weight)
        mean_total = np.mean(totals)
        assert 0.8 * g.total_weight < mean_total < 1.2 * g.total_weight

    def test_reduction_ratio_field(self, medium_er_graph):
        result = parallel_sample(medium_er_graph, epsilon=0.5, config=PRACTICAL, seed=6)
        assert result.reduction_ratio == pytest.approx(
            result.output_edges / result.input_edges
        )

    def test_epsilon_validation(self, medium_er_graph):
        with pytest.raises(SparsificationError):
            parallel_sample(medium_er_graph, epsilon=0.0)

    def test_reproducibility(self, medium_er_graph):
        a = parallel_sample(medium_er_graph, epsilon=0.5, config=PRACTICAL, seed=42)
        b = parallel_sample(medium_er_graph, epsilon=0.5, config=PRACTICAL, seed=42)
        assert a.sparsifier.same_edge_set(b.sparsifier)

    def test_tracker_receives_work(self, medium_er_graph):
        tracker = PRAMTracker()
        parallel_sample(medium_er_graph, epsilon=0.5, config=PRACTICAL, seed=7, tracker=tracker)
        assert tracker.work > 0
        assert "sample/bernoulli" in tracker.breakdown()


class TestDegenerateCases:
    def test_theory_constants_on_small_graph_are_degenerate(self, small_er_graph):
        """With the paper's constants the bundle swallows a laptop-scale graph."""
        result = parallel_sample(
            small_er_graph, epsilon=0.5, config=SparsifierConfig.theory(), seed=0
        )
        assert result.degenerate
        assert result.sparsifier.same_edge_set(small_er_graph)

    def test_tiny_graph_returned_unchanged(self):
        g = Graph(2, [0], [1], [1.0])
        result = parallel_sample(g, epsilon=0.5, seed=0)
        assert result.degenerate
        assert result.output_edges == 1

    def test_tree_input_degenerate(self):
        tree = gen.path_graph(50)
        result = parallel_sample(tree, epsilon=0.5, config=PRACTICAL, seed=1)
        assert result.degenerate
        assert result.sparsifier.same_edge_set(tree)

    def test_empty_graph(self):
        result = parallel_sample(Graph(5), epsilon=0.5, seed=0)
        assert result.degenerate
        assert result.output_edges == 0


class TestQuality:
    def test_connectivity_preserved(self, medium_er_graph):
        result = parallel_sample(medium_er_graph, epsilon=0.5, config=PRACTICAL, seed=8)
        assert is_connected(result.sparsifier)

    def test_certificate_bounded(self, medium_er_graph):
        result = parallel_sample(medium_er_graph, epsilon=0.5, config=PRACTICAL, seed=9)
        cert = certify_approximation(medium_er_graph, result.sparsifier)
        # Practical constants: not necessarily within epsilon, but well-bounded.
        assert cert.lower > 0.25
        assert cert.upper < 2.5

    def test_larger_bundle_improves_quality(self):
        g = gen.erdos_renyi_graph(150, 0.3, seed=10, ensure_connected=True)
        eps_small = []
        eps_large = []
        for seed in range(3):
            r1 = parallel_sample(g, config=SparsifierConfig.practical(bundle_t=1), seed=seed)
            r2 = parallel_sample(g, config=SparsifierConfig.practical(bundle_t=5), seed=seed)
            eps_small.append(certify_approximation(g, r1.sparsifier).epsilon_achieved)
            eps_large.append(certify_approximation(g, r2.sparsifier).epsilon_achieved)
        assert np.mean(eps_large) < np.mean(eps_small)

    def test_dumbbell_bridge_never_lost(self, dumbbell):
        """The bridge edges are in every spanner, so the sparsifier keeps them."""
        for seed in range(5):
            result = parallel_sample(dumbbell, epsilon=0.5, config=PRACTICAL, seed=seed)
            assert is_connected(result.sparsifier)

    def test_certify_stretch_mode_runs(self, medium_er_graph):
        config = SparsifierConfig.practical(certify_stretch=True, bundle_t=2)
        result = parallel_sample(medium_er_graph, epsilon=0.5, config=config, seed=11)
        assert result.output_edges > 0

    def test_tree_bundle_mode_produces_smaller_output(self):
        g = gen.erdos_renyi_graph(150, 0.3, seed=12, ensure_connected=True)
        spanner_cfg = SparsifierConfig.practical(bundle_t=3)
        tree_cfg = SparsifierConfig.practical(bundle_t=3, use_tree_bundle=True)
        r_spanner = parallel_sample(g, config=spanner_cfg, seed=13)
        r_tree = parallel_sample(g, config=tree_cfg, seed=13)
        assert r_tree.output_edges < r_spanner.output_edges

    @given(seed=st.integers(min_value=0, max_value=1_000))
    @settings(max_examples=8, deadline=None)
    def test_sparsifier_always_psd_dominated_sanely(self, seed):
        """Property: the certificate bounds are positive and finite for connected inputs."""
        g = gen.erdos_renyi_graph(60, 0.3, seed=seed, ensure_connected=True)
        result = parallel_sample(g, epsilon=0.5, config=PRACTICAL, seed=seed + 1)
        cert = certify_approximation(g, result.sparsifier)
        assert 0 < cert.lower <= cert.upper < 10
