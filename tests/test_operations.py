"""Tests for repro.graphs.operations (graph algebra)."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.graphs.operations import (
    disjoint_union,
    edge_membership_mask,
    graph_difference,
    graph_scale,
    graph_sum,
    induced_subgraph,
    reweighted,
)


class TestGraphSum:
    def test_sum_of_laplacians(self, triangle_graph, rng):
        doubled = graph_sum([triangle_graph, triangle_graph], coalesce=True)
        assert np.allclose(
            doubled.laplacian().toarray(), 2 * triangle_graph.laplacian().toarray()
        )

    def test_sum_preserves_multigraph_without_coalesce(self, triangle_graph):
        result = graph_sum([triangle_graph, triangle_graph])
        assert result.num_edges == 6

    def test_sum_requires_matching_vertex_counts(self, triangle_graph):
        with pytest.raises(GraphError):
            graph_sum([triangle_graph, Graph(4)])

    def test_sum_empty_list(self):
        with pytest.raises(GraphError):
            graph_sum([])

    def test_sum_with_empty_graphs(self):
        result = graph_sum([Graph(3), Graph(3)])
        assert result.num_edges == 0

    def test_scale(self, weighted_path):
        assert graph_scale(weighted_path, 3.0).total_weight == pytest.approx(21.0)


class TestMembershipAndDifference:
    def test_membership_mask(self, weighted_path):
        sub = weighted_path.select_edges(np.array([0, 2]))
        mask = edge_membership_mask(weighted_path, sub)
        assert mask.tolist() == [True, False, True]

    def test_membership_with_empty_subgraph(self, weighted_path):
        mask = edge_membership_mask(weighted_path, Graph(4))
        assert not mask.any()

    def test_membership_requires_same_vertex_set(self, weighted_path):
        with pytest.raises(GraphError):
            edge_membership_mask(weighted_path, Graph(5))

    def test_difference_removes_subgraph_edges(self, small_er_graph):
        sub = small_er_graph.select_edges(np.arange(10))
        remaining = graph_difference(small_er_graph, sub)
        assert remaining.num_edges == small_er_graph.num_edges - 10
        mask = edge_membership_mask(remaining, sub)
        assert not mask.any()

    def test_difference_with_itself_is_empty(self, small_er_graph):
        assert graph_difference(small_er_graph, small_er_graph).num_edges == 0

    def test_difference_ignores_weights(self):
        g = Graph(3, [0, 1], [1, 2], [1.0, 1.0])
        h = Graph(3, [0], [1], [99.0])  # same endpoints, different weight
        assert graph_difference(g, h).num_edges == 1

    def test_bundle_peeling_identity(self, small_er_graph):
        """G = H + (G - H) at the edge-set level (what the bundle construction relies on)."""
        h = small_er_graph.select_edges(np.arange(0, small_er_graph.num_edges, 3))
        rest = graph_difference(small_er_graph, h)
        recombined = graph_sum([h, rest])
        assert recombined.same_edge_set(small_er_graph)


class TestSubgraphAndReweight:
    def test_induced_subgraph_relabels(self):
        g = gen.grid_graph(3, 3)
        sub = induced_subgraph(g, [0, 1, 3, 4])
        assert sub.num_vertices == 4
        assert sub.num_edges == 4  # the 2x2 sub-grid

    def test_induced_subgraph_out_of_range(self, triangle_graph):
        with pytest.raises(GraphError):
            induced_subgraph(triangle_graph, [0, 5])

    def test_induced_subgraph_empty_selection(self, triangle_graph):
        sub = induced_subgraph(triangle_graph, [])
        assert sub.num_vertices == 0
        assert sub.num_edges == 0

    def test_reweighted(self, weighted_path):
        new = reweighted(weighted_path, np.array([1.0, 1.0, 1.0]))
        assert new.total_weight == pytest.approx(3.0)

    def test_reweighted_wrong_length(self, weighted_path):
        with pytest.raises(GraphError):
            reweighted(weighted_path, np.array([1.0]))

    def test_disjoint_union(self, triangle_graph, weighted_path):
        combined = disjoint_union(triangle_graph, weighted_path)
        assert combined.num_vertices == 7
        assert combined.num_edges == 6
        # No edges between the two blocks.
        assert not combined.has_edge(0, 4)
