"""Golden-output tests for the vectorized spanner/bundle hot path.

The segmented-reduction Baswana–Sen and the zero-copy bundle peel must
select *bit-identical* edge sets to the seed implementation for every
fixed seed.  Two independent guards:

* ``tests/golden/spanner_goldens.json`` — edge selections frozen from the
  seed code before the refactor (regenerable via
  ``tests/golden/generate_goldens.py``);
* ``repro.spanners._reference`` — the seed implementation preserved
  verbatim, compared live on the same inputs.

Plus the structural guarantee the refactor exists for: zero validated
``Graph`` constructions inside the t-round peel loop.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.graphs.generators import banded_graph
from repro.graphs.graph import Graph
from repro.parallel.pram import PRAMTracker
from repro.spanners._reference import (
    reference_baswana_sen_spanner,
    reference_t_bundle_spanner,
)
from repro.spanners.baswana_sen import baswana_sen_spanner
from repro.spanners.bundle import t_bundle_spanner

GOLDEN_PATH = Path(__file__).resolve().parent / "golden" / "spanner_goldens.json"


@pytest.fixture(scope="module")
def golden_cases():
    """Rebuild the exact graphs the goldens were generated from (once)."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "spanner_golden_generator", GOLDEN_PATH.parent / "generate_goldens.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.cases()


@pytest.fixture(scope="module")
def goldens():
    return json.loads(GOLDEN_PATH.read_text())


class TestGoldenOutputs:
    """Vectorized implementations vs. selections frozen from the seed code."""

    @pytest.mark.parametrize("case_index", range(7))
    def test_spanner_matches_golden(self, goldens, golden_cases, case_index):
        name, graph, seed, k, _t = golden_cases[case_index]
        result = baswana_sen_spanner(graph, k=k, seed=seed)
        expected = np.array(goldens[name]["spanner_edge_indices"], dtype=np.int64)
        assert np.array_equal(result.edge_indices, expected)

    @pytest.mark.parametrize("case_index", range(7))
    def test_bundle_matches_golden(self, goldens, golden_cases, case_index):
        name, graph, seed, k, t = golden_cases[case_index]
        result = t_bundle_spanner(graph, t=t, k=k, seed=seed)
        expected = np.array(goldens[name]["bundle_edge_indices"], dtype=np.int64)
        assert np.array_equal(result.edge_indices, expected)
        expected_components = goldens[name]["bundle_components"]
        assert len(result.component_edge_indices) == len(expected_components)
        for got, want in zip(result.component_edge_indices, expected_components):
            assert np.array_equal(got, np.array(want, dtype=np.int64))


class TestAgainstReference:
    """Vectorized implementations vs. the preserved seed implementation, live."""

    @pytest.mark.parametrize("seed", [0, 13, 99])
    def test_spanner_bit_identical_er(self, seed):
        g = gen.erdos_renyi_graph(
            90, 0.2, seed=seed, weight_range=(0.5, 3.0), ensure_connected=True
        )
        fast = baswana_sen_spanner(g, seed=seed + 1)
        slow = reference_baswana_sen_spanner(g, seed=seed + 1)
        assert np.array_equal(fast.edge_indices, slow.edge_indices)

    @pytest.mark.parametrize("seed", [3, 21])
    def test_bundle_bit_identical_banded(self, seed):
        g = banded_graph(150, 5)
        fast = t_bundle_spanner(g, t=4, seed=seed)
        slow = reference_t_bundle_spanner(g, t=4, seed=seed)
        assert np.array_equal(fast.edge_indices, slow.edge_indices)
        assert fast.t == slow.t
        assert fast.exhausted == slow.exhausted
        for a, b in zip(fast.component_edge_indices, slow.component_edge_indices):
            assert np.array_equal(a, b)

    def test_bundle_bit_identical_powerlaw_exhaustion(self):
        # Sparse power-law graph: the bundle exhausts it, exercising the
        # early-stop paths of both implementations.
        g = gen.barabasi_albert_graph(80, 2, seed=4)
        fast = t_bundle_spanner(g, t=6, seed=7)
        slow = reference_t_bundle_spanner(g, t=6, seed=7)
        assert np.array_equal(fast.edge_indices, slow.edge_indices)
        assert fast.exhausted == slow.exhausted
        assert fast.t == slow.t

    def test_bundle_no_early_stop_matches(self):
        path = gen.path_graph(25)
        fast = t_bundle_spanner(path, t=3, seed=1, stop_when_exhausted=False)
        slow = reference_t_bundle_spanner(path, t=3, seed=1, stop_when_exhausted=False)
        assert fast.t == slow.t == 3
        assert np.array_equal(fast.edge_indices, slow.edge_indices)
        for a, b in zip(fast.component_edge_indices, slow.component_edge_indices):
            assert np.array_equal(a, b)


class TestZeroValidationPeel:
    """The t-round peel must not run a single validated Graph construction."""

    def test_no_graph_init_inside_bundle(self, monkeypatch):
        g = gen.erdos_renyi_graph(120, 0.15, seed=6, ensure_connected=True)
        calls = []
        original_init = Graph.__init__

        def counting_init(self, *args, **kwargs):
            calls.append(1)
            original_init(self, *args, **kwargs)

        monkeypatch.setattr(Graph, "__init__", counting_init)
        result = t_bundle_spanner(g, t=4, seed=2)
        assert result.num_edges > 0
        assert len(calls) == 0

    def test_no_graph_init_inside_spanner(self, monkeypatch):
        g = banded_graph(100, 4)
        calls = []
        original_init = Graph.__init__

        def counting_init(self, *args, **kwargs):
            calls.append(1)
            original_init(self, *args, **kwargs)

        monkeypatch.setattr(Graph, "__init__", counting_init)
        result = baswana_sen_spanner(g, seed=3)
        assert result.spanner.num_edges > 0
        assert len(calls) == 0


class TestCostAccounting:
    """Satellite fixes: per-call cost deltas and the bundle charge labels."""

    def test_spanner_cost_is_delta_on_shared_tracker(self):
        g = gen.erdos_renyi_graph(70, 0.2, seed=8, ensure_connected=True)
        tracker = PRAMTracker()
        first = baswana_sen_spanner(g, seed=1, tracker=tracker)
        second = baswana_sen_spanner(g, seed=2, tracker=tracker)
        # Each result reports only its own work; the sum matches the tracker.
        assert first.cost.work > 0
        assert second.cost.work > 0
        assert first.cost.work + second.cost.work == pytest.approx(tracker.total.work)
        assert first.cost.depth + second.cost.depth == pytest.approx(tracker.total.depth)

    def test_bundle_cost_is_delta_on_shared_tracker(self):
        g = gen.erdos_renyi_graph(70, 0.25, seed=9, ensure_connected=True)
        tracker = PRAMTracker()
        first = t_bundle_spanner(g, t=2, seed=1, tracker=tracker)
        second = t_bundle_spanner(g, t=2, seed=2, tracker=tracker)
        assert first.cost.work > 0
        assert first.cost.work + second.cost.work == pytest.approx(tracker.total.work)

    def test_component_costs_sum_to_bundle_cost(self):
        g = gen.erdos_renyi_graph(80, 0.25, seed=10, ensure_connected=True)
        tracker = PRAMTracker()
        bundle = t_bundle_spanner(g, t=3, seed=5, tracker=tracker)
        assert bundle.cost.work == pytest.approx(tracker.total.work)

    def test_bundle_assemble_charged_and_final_peel_not(self):
        g = gen.erdos_renyi_graph(80, 0.3, seed=11, ensure_connected=True)
        tracker = PRAMTracker()
        bundle = t_bundle_spanner(g, t=3, seed=5, tracker=tracker)
        breakdown = tracker.breakdown()
        assert "bundle/assemble" in breakdown
        total_chosen = sum(c.shape[0] for c in bundle.component_edge_indices)
        assert breakdown["bundle/assemble"].work == pytest.approx(total_chosen)
        # t rounds but only t-1 peel passes: the final remainder is unused.
        assert breakdown["bundle/peel-edges"].work < bundle.t * g.num_edges
