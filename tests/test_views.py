"""Property tests for the trusted EdgeSubset view layer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import GraphError
from repro.graphs import EdgeSubset
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.spanners.baswana_sen import baswana_sen_spanner
from repro.spanners.bundle import t_bundle_spanner
from repro.spanners.verification import verify_spanner


def banded_graph(n: int, band: int, seed: int = 0) -> Graph:
    return gen.banded_graph(n, band, weight_range=(0.5, 2.0), seed=seed)


class TestEdgeSubsetBasics:
    def test_full_view_shares_parent_arrays(self, medium_er_graph):
        view = EdgeSubset.full(medium_er_graph)
        assert view.num_edges == medium_er_graph.num_edges
        assert view.num_vertices == medium_er_graph.num_vertices
        assert view.edge_u is medium_er_graph.edge_u
        assert view.edge_v is medium_er_graph.edge_v
        assert view.edge_weights is medium_er_graph.edge_weights

    def test_graph_edge_subset_helper(self, medium_er_graph):
        view = medium_er_graph.edge_subset()
        assert view.parent is medium_er_graph
        restricted = medium_er_graph.edge_subset(np.array([0, 2]))
        assert restricted.num_edges == 2
        assert np.array_equal(restricted.parent_indices, [0, 2])

    def test_select_composes_index_maps(self, medium_er_graph):
        view = EdgeSubset.full(medium_er_graph).select_edges(np.arange(10))
        nested = view.select_edges(np.array([1, 3, 5]))
        assert np.array_equal(nested.parent_indices, [1, 3, 5])
        assert nested.parent is medium_er_graph
        assert np.array_equal(nested.edge_u, medium_er_graph.edge_u[[1, 3, 5]])

    def test_mask_length_validated(self, medium_er_graph):
        view = EdgeSubset.full(medium_er_graph)
        with pytest.raises(GraphError):
            view.select_edges(np.array([True, False]))
        with pytest.raises(GraphError):
            view.remove_edges(np.array([True]))

    def test_remove_edges(self, medium_er_graph):
        view = EdgeSubset.full(medium_er_graph)
        mask = np.zeros(view.num_edges, dtype=bool)
        mask[:4] = True
        remaining = view.remove_edges(mask)
        assert remaining.num_edges == view.num_edges - 4
        assert np.array_equal(
            remaining.parent_indices, np.arange(4, view.num_edges)
        )

    def test_to_parent_indices(self, medium_er_graph):
        view = EdgeSubset.from_indices(medium_er_graph, np.array([5, 7, 9]))
        assert np.array_equal(view.to_parent_indices(np.array([0, 2])), [5, 9])

    def test_materialize_zero_copy_equals_select_edges(self, medium_er_graph):
        idx = np.arange(0, medium_er_graph.num_edges, 2)
        via_view = EdgeSubset.from_indices(medium_er_graph, idx).materialize()
        via_graph = medium_er_graph.select_edges(idx)
        assert via_view.same_edge_set(via_graph)
        # Trusted materialisation shares the sliced arrays outright.
        assert via_view.edge_u.flags.writeable is False

    def test_materialize_with_weight_override(self, medium_er_graph):
        view = EdgeSubset.full(medium_er_graph)
        doubled = view.materialize(weights=medium_er_graph.edge_weights * 2.0)
        assert np.allclose(doubled.edge_weights, medium_er_graph.edge_weights * 2.0)


class TestEdgeSubsetRoundTrips:
    @given(
        seed=st.integers(min_value=0, max_value=500),
        data=st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_round_trip_through_select_edges(self, seed, data):
        """Any chain of restrictions agrees with direct Graph.select_edges."""
        g = gen.erdos_renyi_graph(
            30, 0.3, seed=seed, weight_range=(0.5, 3.0), ensure_connected=True
        )
        m = g.num_edges
        keep = data.draw(
            st.lists(st.booleans(), min_size=m, max_size=m).map(np.array)
        )
        view = EdgeSubset.full(g).select_edges(keep)
        direct = g.select_edges(keep)
        materialized = view.materialize()
        assert materialized.same_edge_set(direct)
        assert np.array_equal(view.parent_indices, np.flatnonzero(keep))
        # Second hop: restrict the view again and compare against composing
        # the masks on the parent.
        m2 = view.num_edges
        if m2:
            keep2 = data.draw(
                st.lists(st.booleans(), min_size=m2, max_size=m2).map(np.array)
            )
            nested = view.select_edges(keep2)
            composed = np.flatnonzero(keep)[keep2]
            assert np.array_equal(nested.parent_indices, composed)
            assert nested.materialize().same_edge_set(g.select_edges(composed))

    def test_peeling_partition_covers_parent(self):
        """Iterated remove_edges partitions the parent's edge index space."""
        g = banded_graph(80, 5, seed=3)
        view = EdgeSubset.full(g)
        rng = np.random.default_rng(0)
        seen = []
        while view.num_edges:
            take = rng.random(view.num_edges) < 0.4
            if not take.any():
                take[0] = True
            seen.append(view.parent_indices[take])
            view = view.remove_edges(take)
        all_indices = np.sort(np.concatenate(seen))
        assert np.array_equal(all_indices, np.arange(g.num_edges))


class TestSpannerOnViews:
    """The spanner/bundle entry points accept views and certify on banded graphs."""

    def test_spanner_on_view_matches_graph(self):
        g = banded_graph(100, 6, seed=1)
        on_graph = baswana_sen_spanner(g, seed=5)
        on_view = baswana_sen_spanner(EdgeSubset.full(g), seed=5)
        assert np.array_equal(on_graph.edge_indices, on_view.edge_indices)
        assert isinstance(on_view.spanner, Graph)

    def test_bundle_on_view_matches_graph(self):
        g = banded_graph(100, 6, seed=2)
        on_graph = t_bundle_spanner(g, t=3, seed=9)
        on_view = t_bundle_spanner(EdgeSubset.full(g), t=3, seed=9)
        assert np.array_equal(on_graph.edge_indices, on_view.edge_indices)
        assert isinstance(on_view.bundle, Graph)

    def test_restricted_view_spanner_indices_are_local(self):
        g = banded_graph(90, 5, seed=4)
        idx = np.flatnonzero(np.arange(g.num_edges) % 3 != 0)
        view = EdgeSubset.from_indices(g, idx)
        result = baswana_sen_spanner(view, seed=11)
        assert result.edge_indices.max(initial=-1) < view.num_edges
        direct = baswana_sen_spanner(g.select_edges(idx), seed=11)
        assert np.array_equal(result.edge_indices, direct.edge_indices)

    @pytest.mark.parametrize("seed", [0, 7])
    def test_stretch_verification_still_certifies_on_banded(self, seed):
        """End-to-end: vectorized spanner on a banded graph passes verification."""
        g = banded_graph(120, 6, seed=seed)
        result = baswana_sen_spanner(g, seed=seed + 1)
        assert verify_spanner(g, result)

    def test_bundle_components_on_banded_certify(self):
        from repro.resistance.stretch import stretch_over_subgraph

        g = banded_graph(60, 4, seed=5)
        bundle = t_bundle_spanner(g, t=2, seed=3)
        target = 2 * np.ceil(np.log2(g.num_vertices)) - 1
        removed = np.zeros(g.num_edges, dtype=bool)
        for component in bundle.component_edge_indices:
            remaining = g.select_edges(~removed)
            remaining_ids = np.flatnonzero(~removed)
            local = np.flatnonzero(np.isin(remaining_ids, component))
            spanner = remaining.select_edges(local)
            outside_local = np.setdiff1d(np.arange(remaining.num_edges), local)
            if outside_local.size:
                stretches = stretch_over_subgraph(remaining, spanner, outside_local)
                assert stretches.max() <= target + 1e-9
            removed[component] = True
