"""Tests for repro.core.config (SparsifierConfig)."""

import numpy as np
import pytest

from repro.core.config import SparsifierConfig
from repro.exceptions import SparsificationError


class TestValidation:
    def test_defaults_valid(self):
        config = SparsifierConfig()
        assert config.mode == "practical"
        assert config.sampling_probability == 0.25

    def test_bad_epsilon(self):
        with pytest.raises(ValueError):
            SparsifierConfig(epsilon=0.0)
        with pytest.raises(ValueError):
            SparsifierConfig(epsilon=2.0)

    def test_bad_mode(self):
        with pytest.raises(SparsificationError):
            SparsifierConfig(mode="heroic")

    def test_bad_probability(self):
        with pytest.raises(ValueError):
            SparsifierConfig(sampling_probability=1.5)
        with pytest.raises(SparsificationError):
            SparsifierConfig(sampling_probability=0.0)

    def test_bad_constants(self):
        with pytest.raises(SparsificationError):
            SparsifierConfig(bundle_constant=0.0)
        with pytest.raises(SparsificationError):
            SparsifierConfig(practical_scale=-1.0)
        with pytest.raises(SparsificationError):
            SparsifierConfig(bundle_t=0)
        with pytest.raises(SparsificationError):
            SparsifierConfig(spanner_k=0)
        with pytest.raises(SparsificationError):
            SparsifierConfig(min_edges_to_sparsify=-1)

    def test_solver_choices(self):
        assert SparsifierConfig().solver == "cg"
        for choice in ("cg", "chain", "auto"):
            assert SparsifierConfig(solver=choice).solver == choice
        with pytest.raises(SparsificationError):
            SparsifierConfig(solver="gaussian")

    def test_frozen(self):
        with pytest.raises(Exception):
            SparsifierConfig().epsilon = 0.1


class TestBundleSize:
    def test_theory_mode_matches_paper_formula(self):
        config = SparsifierConfig.theory(epsilon=0.5)
        n = 1024
        expected = int(np.ceil(24 * 10 * 10 / 0.25))
        assert config.bundle_size(n) == expected

    def test_theory_mode_epsilon_dependence(self):
        config = SparsifierConfig.theory(epsilon=1.0)
        assert config.bundle_size(1024, epsilon=0.5) == 4 * config.bundle_size(1024, epsilon=1.0)

    def test_practical_mode_scales_with_log_n(self):
        config = SparsifierConfig.practical(practical_scale=1.0)
        assert config.bundle_size(1024) == 10
        assert config.bundle_size(2 ** 20) == 20

    def test_explicit_bundle_t_wins(self):
        config = SparsifierConfig(bundle_t=7, mode="theory")
        assert config.bundle_size(10_000) == 7

    def test_bundle_size_at_least_one(self):
        config = SparsifierConfig.practical(practical_scale=0.01)
        assert config.bundle_size(4) >= 1

    def test_bundle_size_epsilon_validated(self):
        with pytest.raises(ValueError):
            SparsifierConfig().bundle_size(100, epsilon=0.0)


class TestDerivedQuantities:
    def test_weight_multiplier_is_inverse_probability(self):
        assert SparsifierConfig(sampling_probability=0.25).weight_multiplier == 4.0
        assert SparsifierConfig(sampling_probability=0.5).weight_multiplier == 2.0

    def test_num_rounds(self):
        assert SparsifierConfig.num_rounds(1) == 0
        assert SparsifierConfig.num_rounds(2) == 1
        assert SparsifierConfig.num_rounds(4) == 2
        assert SparsifierConfig.num_rounds(5) == 3
        assert SparsifierConfig.num_rounds(16) == 4

    def test_num_rounds_rejects_below_one(self):
        with pytest.raises(SparsificationError):
            SparsifierConfig.num_rounds(0.5)

    def test_per_round_epsilon(self):
        config = SparsifierConfig(epsilon=0.8)
        assert config.per_round_epsilon(4) == pytest.approx(0.4)
        assert config.per_round_epsilon(1) == pytest.approx(0.8)

    def test_with_overrides(self):
        base = SparsifierConfig(epsilon=0.5)
        changed = base.with_overrides(epsilon=0.25, bundle_t=3)
        assert changed.epsilon == 0.25
        assert changed.bundle_t == 3
        assert base.epsilon == 0.5  # original untouched

    def test_classmethod_constructors(self):
        assert SparsifierConfig.theory().mode == "theory"
        assert SparsifierConfig.practical().mode == "practical"
