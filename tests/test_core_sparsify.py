"""Tests for Algorithm 2 (PARALLELSPARSIFY) and the spectral certificates."""

import numpy as np
import pytest

from repro.core.certificates import SpectralCertificate, certify_approximation
from repro.core.config import SparsifierConfig
from repro.core.sparsify import parallel_sparsify
from repro.exceptions import SparsificationError
from repro.graphs import generators as gen
from repro.graphs.connectivity import is_connected
from repro.graphs.graph import Graph

PRACTICAL = SparsifierConfig.practical(practical_scale=0.5)
SMALL_BUNDLE = SparsifierConfig.practical(bundle_t=1)


class TestRounds:
    def test_number_of_rounds_matches_log_rho(self, medium_er_graph):
        result = parallel_sparsify(medium_er_graph, epsilon=0.5, rho=8, config=PRACTICAL, seed=0)
        assert len(result.rounds) <= 3
        if not result.stopped_early:
            assert len(result.rounds) == 3

    def test_rho_one_returns_input(self, medium_er_graph):
        result = parallel_sparsify(medium_er_graph, epsilon=0.5, rho=1, config=PRACTICAL, seed=0)
        assert len(result.rounds) == 0
        assert result.sparsifier.same_edge_set(medium_er_graph.coalesce())

    def test_per_round_epsilon_split(self, medium_er_graph):
        result = parallel_sparsify(medium_er_graph, epsilon=0.6, rho=4, config=PRACTICAL, seed=1)
        for record in result.rounds:
            assert record.epsilon == pytest.approx(0.3)

    def test_round_records_consistent(self):
        g = gen.erdos_renyi_graph(150, 0.4, seed=2, ensure_connected=True)
        result = parallel_sparsify(g, epsilon=0.5, rho=4, config=SMALL_BUNDLE, seed=3)
        for record in result.rounds:
            assert record.output_edges <= record.bundle_edges + record.sampled_edges
            assert record.work > 0
        # Rounds are numbered consecutively from 1.
        assert [r.round_index for r in result.rounds] == list(range(1, len(result.rounds) + 1))

    def test_edge_counts_decrease_across_rounds(self):
        g = gen.erdos_renyi_graph(200, 0.5, seed=4, ensure_connected=True)
        result = parallel_sparsify(g, epsilon=0.5, rho=8, config=SMALL_BUNDLE, seed=5)
        inputs = [r.input_edges for r in result.rounds]
        assert all(later <= earlier for earlier, later in zip(inputs, inputs[1:]))

    def test_stops_early_when_degenerate(self):
        tree = gen.path_graph(60)
        result = parallel_sparsify(tree, epsilon=0.5, rho=16, config=PRACTICAL, seed=0)
        assert result.stopped_early
        assert result.sparsifier.same_edge_set(tree)

    def test_no_early_stop_flag(self):
        tree = gen.path_graph(30)
        result = parallel_sparsify(
            tree, epsilon=0.5, rho=4, config=PRACTICAL, seed=0, stop_on_degenerate=False
        )
        assert len(result.rounds) == 2

    def test_validation(self, medium_er_graph):
        with pytest.raises(SparsificationError):
            parallel_sparsify(medium_er_graph, epsilon=0.5, rho=0.5)
        with pytest.raises(SparsificationError):
            parallel_sparsify(medium_er_graph, epsilon=1.5, rho=2)


class TestOutputQuality:
    def test_reduction_on_dense_graph(self):
        g = gen.erdos_renyi_graph(200, 0.5, seed=6, ensure_connected=True)
        result = parallel_sparsify(g, epsilon=0.5, rho=8, config=SMALL_BUNDLE, seed=7)
        assert result.output_edges < g.num_edges
        assert result.reduction_factor > 1.5

    def test_connectivity_preserved(self):
        g = gen.erdos_renyi_graph(150, 0.3, seed=8, ensure_connected=True)
        result = parallel_sparsify(g, epsilon=0.5, rho=4, config=PRACTICAL, seed=9)
        assert is_connected(result.sparsifier)

    def test_certificate_quality_reasonable(self):
        g = gen.erdos_renyi_graph(150, 0.3, seed=10, ensure_connected=True)
        result = parallel_sparsify(g, epsilon=0.5, rho=4, config=PRACTICAL, seed=11)
        cert = certify_approximation(g, result.sparsifier)
        assert cert.lower > 0.2
        assert cert.upper < 3.0

    def test_output_coalesced(self, medium_er_graph):
        result = parallel_sparsify(medium_er_graph, epsilon=0.5, rho=4, config=PRACTICAL, seed=12)
        keys = result.sparsifier.edge_keys()
        assert len(np.unique(keys)) == len(keys)

    def test_total_cost_accumulates(self, medium_er_graph):
        result = parallel_sparsify(medium_er_graph, epsilon=0.5, rho=4, config=PRACTICAL, seed=13)
        assert result.cost.work >= sum(r.work for r in result.rounds)

    def test_larger_rho_gives_fewer_edges(self):
        g = gen.erdos_renyi_graph(200, 0.5, seed=14, ensure_connected=True)
        small_rho = parallel_sparsify(g, epsilon=0.5, rho=2, config=SMALL_BUNDLE, seed=15)
        large_rho = parallel_sparsify(g, epsilon=0.5, rho=16, config=SMALL_BUNDLE, seed=15)
        assert large_rho.output_edges <= small_rho.output_edges

    def test_reproducible(self, medium_er_graph):
        a = parallel_sparsify(medium_er_graph, epsilon=0.5, rho=4, config=PRACTICAL, seed=16)
        b = parallel_sparsify(medium_er_graph, epsilon=0.5, rho=4, config=PRACTICAL, seed=16)
        assert a.sparsifier.same_edge_set(b.sparsifier)

    def test_empty_graph(self):
        result = parallel_sparsify(Graph(4), epsilon=0.5, rho=4, seed=0)
        assert result.output_edges == 0


class TestCertificates:
    def test_identity_certificate(self, medium_er_graph):
        cert = certify_approximation(medium_er_graph, medium_er_graph)
        assert cert.lower == pytest.approx(1.0, abs=1e-6)
        assert cert.upper == pytest.approx(1.0, abs=1e-6)
        assert cert.epsilon_achieved == pytest.approx(0.0, abs=1e-6)
        assert cert.holds(0.01)

    def test_scaled_graph_certificate(self, small_er_graph):
        cert = certify_approximation(small_er_graph, small_er_graph.scaled(1.3))
        assert cert.lower == pytest.approx(1.3, abs=1e-6)
        assert cert.upper == pytest.approx(1.3, abs=1e-6)
        assert not cert.holds(0.2)
        assert cert.holds(0.35)

    def test_condition_number(self):
        cert = SpectralCertificate(lower=0.5, upper=2.0)
        assert cert.condition_number == pytest.approx(4.0)
        assert cert.epsilon_achieved == pytest.approx(1.0)

    def test_zero_lower_bound_condition_number(self):
        assert SpectralCertificate(lower=0.0, upper=1.0).condition_number == float("inf")

    def test_vertex_count_mismatch(self, small_er_graph, triangle_graph):
        with pytest.raises(ValueError):
            certify_approximation(small_er_graph, triangle_graph)

    def test_subgraph_certificate_upper_at_most_one(self, small_er_graph):
        keep = np.ones(small_er_graph.num_edges, dtype=bool)
        keep[::3] = False
        sub = small_er_graph.select_edges(keep)
        cert = certify_approximation(small_er_graph, sub)
        assert cert.upper <= 1.0 + 1e-8
        assert cert.lower < 1.0
