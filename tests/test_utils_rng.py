"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import (
    as_rng,
    bernoulli_mask,
    choose_without_replacement,
    random_permutation,
    spawn_rngs,
    split_rng,
)


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        a = as_rng(42).random(5)
        b = as_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_rng(1).random(5)
        b = as_rng(2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        rng = as_rng(seq)
        assert isinstance(rng, np.random.Generator)


class TestSplitAndSpawn:
    def test_split_count(self):
        children = split_rng(as_rng(0), 4)
        assert len(children) == 4

    def test_split_children_are_independent_streams(self):
        children = split_rng(as_rng(0), 2)
        a = children[0].random(10)
        b = children[1].random(10)
        assert not np.array_equal(a, b)

    def test_split_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            split_rng(as_rng(0), 0)

    def test_spawn_reproducible(self):
        a = [r.random(3) for r in spawn_rngs(5, 3)]
        b = [r.random(3) for r in spawn_rngs(5, 3)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_spawn_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, 0)

    def test_spawn_from_generator(self):
        rngs = spawn_rngs(np.random.default_rng(3), 2)
        assert len(rngs) == 2


class TestSamplingHelpers:
    def test_random_permutation_is_permutation(self):
        perm = random_permutation(as_rng(0), 20)
        assert sorted(perm.tolist()) == list(range(20))

    def test_bernoulli_mask_shape_and_dtype(self):
        mask = bernoulli_mask(as_rng(0), 100, 0.5)
        assert mask.shape == (100,)
        assert mask.dtype == bool

    def test_bernoulli_mask_extremes(self):
        assert not bernoulli_mask(as_rng(0), 50, 0.0).any()
        assert bernoulli_mask(as_rng(0), 50, 1.0).all()

    def test_bernoulli_mask_empty(self):
        assert bernoulli_mask(as_rng(0), 0, 0.5).shape == (0,)

    def test_bernoulli_mask_invalid_probability(self):
        with pytest.raises(ValueError):
            bernoulli_mask(as_rng(0), 10, 1.5)

    def test_bernoulli_rate_roughly_correct(self):
        mask = bernoulli_mask(as_rng(0), 20000, 0.25)
        assert 0.2 < mask.mean() < 0.3

    def test_choose_without_replacement_distinct(self):
        chosen = choose_without_replacement(as_rng(0), np.arange(30), 10)
        assert len(np.unique(chosen)) == 10

    def test_choose_without_replacement_too_many(self):
        with pytest.raises(ValueError):
            choose_without_replacement(as_rng(0), np.arange(5), 6)
