"""Tests for the distributed PARALLELSAMPLE / PARALLELSPARSIFY drivers."""

import numpy as np
import pytest

from repro.core.certificates import certify_approximation
from repro.core.config import SparsifierConfig
from repro.core.distributed_sparsify import (
    distributed_parallel_sample,
    distributed_parallel_sparsify,
)
from repro.exceptions import SparsificationError
from repro.graphs import generators as gen
from repro.graphs.connectivity import is_connected
from repro.graphs.graph import Graph

CONFIG = SparsifierConfig.practical(bundle_t=2)


class TestDistributedSample:
    def test_basic_run(self, small_er_graph):
        result = distributed_parallel_sample(small_er_graph, epsilon=0.5, config=CONFIG, seed=0)
        assert result.output_edges > 0
        assert result.cost.rounds > 0
        assert result.cost.messages > 0
        assert result.components_built == 2

    def test_output_is_valid_sparsifier(self, small_er_graph):
        result = distributed_parallel_sample(small_er_graph, epsilon=0.5, config=CONFIG, seed=1)
        assert is_connected(result.sparsifier)
        cert = certify_approximation(small_er_graph, result.sparsifier)
        assert 0 < cert.lower <= cert.upper < 5

    def test_message_size_stays_logarithmic(self, small_er_graph):
        result = distributed_parallel_sample(small_er_graph, epsilon=0.5, config=CONFIG, seed=2)
        limit = 4 * int(np.ceil(np.log2(small_er_graph.num_vertices))) + 16
        assert result.cost.max_message_words <= limit

    def test_bundle_and_sampled_indices_disjoint(self, small_er_graph):
        result = distributed_parallel_sample(small_er_graph, epsilon=0.5, config=CONFIG, seed=3)
        assert not np.intersect1d(result.bundle_edge_indices, result.sampled_edge_indices).size

    def test_degenerate_on_tree(self):
        tree = gen.path_graph(40)
        result = distributed_parallel_sample(tree, epsilon=0.5, config=CONFIG, seed=0)
        assert result.degenerate
        assert result.sparsifier.same_edge_set(tree)

    def test_tiny_graph_short_circuit(self):
        g = Graph(2, [0], [1], [1.0])
        result = distributed_parallel_sample(g, config=CONFIG, seed=0)
        assert result.degenerate
        assert result.cost.rounds == 0

    def test_epsilon_validation(self, small_er_graph):
        with pytest.raises(SparsificationError):
            distributed_parallel_sample(small_er_graph, epsilon=0.0)

    def test_rounds_scale_with_bundle_size(self, small_er_graph):
        one = distributed_parallel_sample(
            small_er_graph, config=SparsifierConfig.practical(bundle_t=1), seed=4
        )
        three = distributed_parallel_sample(
            small_er_graph, config=SparsifierConfig.practical(bundle_t=3), seed=4
        )
        assert three.cost.rounds > one.cost.rounds


class TestDistributedSparsify:
    def test_rounds_and_cost_accumulate(self, small_er_graph):
        result = distributed_parallel_sparsify(
            small_er_graph, epsilon=0.5, rho=4, config=CONFIG, seed=0
        )
        assert len(result.rounds) >= 1
        assert result.cost.rounds == sum(r.cost.rounds for r in result.rounds)
        assert result.cost.messages == sum(r.cost.messages for r in result.rounds)

    def test_quality_comparable_to_sequential(self, small_er_graph):
        from repro.core.sparsify import parallel_sparsify

        dist = distributed_parallel_sparsify(
            small_er_graph, epsilon=0.5, rho=4, config=CONFIG, seed=1
        )
        seq = parallel_sparsify(small_er_graph, epsilon=0.5, rho=4, config=CONFIG, seed=1)
        cert_dist = certify_approximation(small_er_graph, dist.sparsifier)
        cert_seq = certify_approximation(small_er_graph, seq.sparsifier)
        # Same algorithm, different execution substrate: quality in the same ballpark.
        assert abs(cert_dist.epsilon_achieved - cert_seq.epsilon_achieved) < 0.5

    def test_rho_validation(self, small_er_graph):
        with pytest.raises(SparsificationError):
            distributed_parallel_sparsify(small_er_graph, rho=0.1)

    def test_stops_early_on_tree(self):
        tree = gen.path_graph(30)
        result = distributed_parallel_sparsify(tree, epsilon=0.5, rho=8, config=CONFIG, seed=0)
        assert result.stopped_early
