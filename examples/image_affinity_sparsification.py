"""Sparsifying image-affinity graphs (the Remark 1 workload).

Run with:  python examples/image_affinity_sparsification.py

Builds weighted 4-connected affinity graphs of synthetic grayscale images
(``w_ij = exp(-beta (I_i - I_j)^2)``), sparsifies them, and uses them for a
small graph-based smoothing task (solving ``(L + lambda I) x = lambda y``,
the screened-Poisson / weighted-smoothing system common in graph-based
image processing), comparing the result computed on the original graph and
on the sparsifier.
"""

from __future__ import annotations

import numpy as np

from repro import SparsifierConfig, certify_approximation, generators, parallel_sparsify
from repro.linalg.cg import conjugate_gradient


def smooth(graph, signal: np.ndarray, strength: float = 0.5) -> np.ndarray:
    """Solve (L + strength*I) x = strength * signal — graph-regularised smoothing."""
    import scipy.sparse as sp

    system = graph.laplacian() + strength * sp.identity(graph.num_vertices, format="csr")
    return conjugate_gradient(system, strength * signal, tol=1e-9).x


def main() -> None:
    rows = cols = 24
    # Affinity grids are already sparse (4 edges per pixel), so a single-spanner
    # bundle is the right setting; denser inputs would use a larger bundle.
    config = SparsifierConfig.practical(bundle_t=1)

    for kind, beta in (("blobs", 30.0), ("stripes", 30.0)):
        graph = generators.image_affinity_graph(rows, cols, beta=beta, seed=5, kind=kind)
        sparse = parallel_sparsify(graph, epsilon=0.5, rho=4, config=config, seed=6)
        cert = certify_approximation(graph, sparse.sparsifier)

        # Noisy version of the underlying intensity image as the signal to smooth.
        rng = np.random.default_rng(7)
        base = generators._synthetic_image(rows, cols, seed=5, kind=kind).ravel()
        noisy = base + 0.3 * rng.standard_normal(base.shape)

        smoothed_full = smooth(graph, noisy)
        smoothed_sparse = smooth(sparse.sparsifier, noisy)
        agreement = np.linalg.norm(smoothed_full - smoothed_sparse) / np.linalg.norm(smoothed_full)

        print(f"image kind={kind!r} ({rows}x{cols}, beta={beta}):")
        print(f"  affinity graph edges: {graph.num_edges}, sparsifier edges: {sparse.output_edges}")
        print(f"  spectral certificate: [{cert.lower:.3f}, {cert.upper:.3f}]")
        print(f"  smoothing disagreement (relative L2, full vs sparsified graph): {agreement:.3f}")
        print()


if __name__ == "__main__":
    main()
