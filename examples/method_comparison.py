"""Method comparison through the unified API — the paper's experiment in 10 lines.

Run with:  python examples/method_comparison.py

Every sparsifier in the package (and any you register yourself with
``repro.register_method``) is reachable through one front door::

    repro.sparsify(graph, method="koutis", epsilon=0.5, seed=7)

so comparing the paper's spanner-based algorithm against the baselines is
a loop over method names — no per-method glue.  ``compare_methods`` runs
them with identical parameters and ``comparison_table`` renders the
side-by-side summary (the CLI equivalent is ``repro-sparsify compare``).
"""

from __future__ import annotations

import repro
from repro.analysis.reporting import comparison_table
from repro.core.config import SparsifierConfig


def main() -> None:
    graph = repro.generators.erdos_renyi_graph(300, 0.3, seed=7, ensure_connected=True)
    print(f"input graph: n={graph.num_vertices}, m={graph.num_edges}")
    print(f"registered methods: {', '.join(repro.available_methods())}\n")

    # Identical epsilon / seed / config for every method: a fair comparison.
    results = repro.compare_methods(
        graph,
        ["koutis", "koutis-distributed", "spielman-srivastava", "uniform",
         "kapralov-panigrahi"],
        epsilon=0.5,
        seed=7,
        config=SparsifierConfig(bundle_t=2),
        certify=True,
    )
    print(comparison_table(results))

    # The unified result keeps the native result reachable for
    # method-specific detail, e.g. the paper algorithm's per-round decay:
    koutis = results[0]
    print("\nkoutis per-round decay:")
    for record in koutis.native.rounds:
        print(f"  round {record.round_index}: {record.input_edges} -> "
              f"{record.output_edges} edges")

    # Telemetry hook: per-round progress events (what a serving layer logs).
    events = []
    repro.sparsify(graph, method="koutis", epsilon=0.5, seed=7,
                   config=SparsifierConfig(bundle_t=2), progress=events.append)
    print(f"\nprogress events emitted: {[e.kind for e in events]}")


if __name__ == "__main__":
    main()
