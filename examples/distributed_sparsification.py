"""Distributed sparsification on the synchronous message-passing simulator.

Run with:  python examples/distributed_sparsification.py

Builds the t-bundle spanner with the distributed Baswana–Sen protocol
(Theorem 2 of the paper) and runs the full distributed ``PARALLELSPARSIFY``
pipeline, reporting the quantities the distributed model cares about:
rounds, total messages, and the largest message ever sent (which the
simulator caps at O(log n) words, as the CONGEST model requires).
"""

from __future__ import annotations

import numpy as np

from repro import SparsifierConfig, certify_approximation, generators
from repro.core.distributed_sparsify import distributed_parallel_sparsify
from repro.spanners.distributed_spanner import distributed_baswana_sen_spanner
from repro.spanners.verification import max_stretch_of_nonspanner_edges


def main() -> None:
    graph = generators.erdos_renyi_graph(200, 0.2, seed=11, ensure_connected=True)
    n, m = graph.num_vertices, graph.num_edges
    print(f"communication graph: n={n}, m={m}")

    # --- one distributed spanner (Theorem 2) -----------------------------
    spanner = distributed_baswana_sen_spanner(graph, seed=1)
    stretch, _ = max_stretch_of_nonspanner_edges(spanner.simple_graph, spanner.edge_indices)
    print("\ndistributed Baswana-Sen spanner:")
    print(f"  edges: {spanner.spanner.num_edges}  (target stretch {spanner.stretch_target:.0f}, "
          f"measured max stretch {stretch:.2f})")
    print(f"  rounds: {spanner.cost.rounds}  "
          f"(log2(n)^2 = {np.log2(n) ** 2:.0f})")
    print(f"  messages: {spanner.cost.messages}  (m log2 n = {m * np.log2(n):.0f})")
    print(f"  largest message: {spanner.cost.max_message_words} words")

    # --- full distributed PARALLELSPARSIFY (Theorem 5, distributed half) --
    config = SparsifierConfig.practical(bundle_t=2)
    result = distributed_parallel_sparsify(graph, epsilon=0.5, rho=4, config=config, seed=2)
    cert = certify_approximation(graph, result.sparsifier)
    print("\ndistributed PARALLELSPARSIFY (rho=4):")
    print(f"  edges: {result.input_edges} -> {result.output_edges}")
    print(f"  rounds: {result.cost.rounds}, messages: {result.cost.messages}, "
          f"largest message: {result.cost.max_message_words} words")
    print(f"  spectral certificate: [{cert.lower:.3f}, {cert.upper:.3f}]")
    for i, round_result in enumerate(result.rounds, start=1):
        print(f"  round {i}: {round_result.input_edges} -> {round_result.output_edges} edges, "
              f"{round_result.cost.rounds} rounds, {round_result.cost.messages} messages")


if __name__ == "__main__":
    main()
