"""Streaming sparsification: ingest edge batches, snapshot, crash, resume.

Run with:  PYTHONPATH=src python examples/streaming_sparsification.py

Walks the ``repro.streaming`` surface end to end:

1. feed a graph's edges to a :class:`~repro.streaming.StreamingSparsifier`
   in batches, with every batch journaled to disk *before* ingestion,
2. take a pure :meth:`snapshot` and certify it against the exact live
   graph through the blocked solver stack,
3. simulate a crash and rebuild the stream bit-exactly from the journal,
4. show a sliding ``window`` stream forgetting old batches.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import SparsifierConfig, generators
from repro.streaming import StreamingSparsifier

NUM_BATCHES = 4


def batches_of(graph, num_batches):
    """Cut a graph's edge list into contiguous (edges, weights) batches."""
    edges = np.column_stack([graph.edge_u, graph.edge_v])
    bounds = [round(i * graph.num_edges / num_batches) for i in range(num_batches + 1)]
    return [
        (edges[lo:hi], graph.edge_weights[lo:hi])
        for lo, hi in zip(bounds, bounds[1:])
    ]


def main() -> None:
    graph = generators.erdos_renyi_graph(
        150, 0.3, seed=9, ensure_connected=True, weight_range=(0.5, 2.0)
    )
    print(f"input stream: n={graph.num_vertices}, m={graph.num_edges}, "
          f"{NUM_BATCHES} batches")

    # t=1, k=2 keeps the bundle small so a graph this size is genuinely
    # sampled; defaults (t ~ log n) would retain it whole.
    config = SparsifierConfig(bundle_t=1, spanner_k=2)

    with tempfile.TemporaryDirectory() as tmp:
        journal = Path(tmp) / "stream.journal"
        stream = StreamingSparsifier(
            graph.num_vertices,
            config=config,
            seed=7,
            compaction_interval=400,
            journal=journal,
        )
        for edges, weights in batches_of(graph, NUM_BATCHES):
            record = stream.ingest(edges, weights)
            print(f"  batch {record.batch_index}: +{record.edges} edges, "
                  f"{record.compactions_run} compaction(s), "
                  f"state {stream.retained_edges} retained + {stream.pending_edges} pending")

        snap = stream.snapshot()
        print(f"snapshot: {snap.num_edges} edges "
              f"({snap.stats.edges_ingested} ingested, "
              f"{snap.stats.compactions} compactions)")

        cert = stream.certify(solver="cg", seed=3)
        print(f"certified vs exact graph ({cert.reference_edges} edges): "
              f"spectral [{cert.report.certificate.lower:.3f}, "
              f"{cert.report.certificate.upper:.3f}], "
              f"resistances [{cert.resistances.ratio_min:.3f}, "
              f"{cert.resistances.ratio_max:.3f}]")
        print(f"holds(0.8): {cert.holds(0.8)}")

        # Crash simulation: drop the live object, rebuild from the journal.
        del stream
        resumed = StreamingSparsifier.resume(journal, config=config)
        resumed_snap = resumed.snapshot()
        identical = (
            np.array_equal(resumed_snap.graph.edge_u, snap.graph.edge_u)
            and np.array_equal(resumed_snap.graph.edge_v, snap.graph.edge_v)
            and np.array_equal(resumed_snap.graph.edge_weights, snap.graph.edge_weights)
        )
        print(f"resumed from journal: snapshot bit-identical = {identical}")

    # Sliding window: only the last 2 batches stay live; earlier edges
    # (and their exact-reference copies) are evicted on ingest.
    windowed = StreamingSparsifier(
        graph.num_vertices, config=config, seed=7,
        compaction_interval=400, window=2,
    )
    for edges, weights in batches_of(graph, NUM_BATCHES):
        windowed.ingest(edges, weights)
    print(f"window=2 stream: {windowed.live_input_edges} of "
          f"{graph.num_edges} input edges still live, "
          f"snapshot has {windowed.snapshot().num_edges} edges")


if __name__ == "__main__":
    main()
