"""Quickstart: sparsify a dense graph and check the result.

Run with:  python examples/quickstart.py

Demonstrates the three-line workflow of the library:

1. build (or load) a weighted graph,
2. run ``PARALLELSPARSIFY`` (Algorithm 2 of the paper) through the
   unified front door ``repro.sparsify`` (swap ``method=`` to run any
   registered sparsifier — see ``examples/method_comparison.py``),
3. measure the spectral approximation certificate of the output.
"""

from __future__ import annotations

import repro
from repro import SparsifierConfig, certify_approximation, generators
from repro.analysis.spectral import approximation_report


def main() -> None:
    # A dense-ish Erdős–Rényi graph: 400 vertices, ~24k edges.
    graph = generators.erdos_renyi_graph(400, 0.3, seed=7, ensure_connected=True)
    print(f"input graph: n={graph.num_vertices}, m={graph.num_edges}")

    # Practical configuration: bundle of ~log n spanners per round.
    config = SparsifierConfig.practical(bundle_t=2)
    unified = repro.sparsify(
        graph, method="koutis", epsilon=0.5, rho=8, config=config, seed=1
    )
    result = unified.native  # the method's own SparsifyResult, rounds included

    print(f"sparsifier: m={unified.output_edges} "
          f"({unified.reduction_factor:.2f}x fewer edges, {len(result.rounds)} rounds)")
    for record in result.rounds:
        print(f"  round {record.round_index}: {record.input_edges} -> {record.output_edges} edges "
              f"(bundle {record.bundle_edges}, sampled {record.sampled_edges})")

    certificate = certify_approximation(graph, result.sparsifier)
    print(f"spectral certificate: {certificate.lower:.3f} * G  <=  H  <=  {certificate.upper:.3f} * G")
    print(f"  (equivalently a (1 +- {certificate.epsilon_achieved:.3f}) approximation)")

    # Full quality report: quadratic forms, effective resistances, connectivity.
    report = approximation_report(graph, result.sparsifier, seed=3)
    print(f"random quadratic-form ratios in [{report.quadratic_ratio_min:.3f}, "
          f"{report.quadratic_ratio_max:.3f}]")
    print(f"effective-resistance ratios in [{report.resistance_ratio_min:.3f}, "
          f"{report.resistance_ratio_max:.3f}]")
    print(f"connectivity preserved: {report.connectivity_preserved}")


if __name__ == "__main__":
    main()
