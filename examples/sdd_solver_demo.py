"""Solving SDD linear systems with the sparsifier-powered chain solver.

Run with:  python examples/sdd_solver_demo.py

Reproduces the Section-4 / Theorem-6 story end to end:

* build an approximate inverse chain for a grid Laplacian, with each level
  sparsified by ``PARALLELSPARSIFY`` so the chain does not densify;
* solve a Laplacian system with chain-preconditioned CG and compare the
  iteration count and work against plain CG and Jacobi-CG;
* solve a general SDD system through the Gremban reduction.
"""

from __future__ import annotations

import numpy as np

from repro import SparsifierConfig, generators, solve_laplacian, solve_sdd
from repro.solvers.chain import build_inverse_chain
from repro.solvers.peng_spielman import baseline_cg_solve, baseline_jacobi_cg_solve


def laplacian_demo() -> None:
    graph = generators.grid_graph(30, 30)
    rng = np.random.default_rng(0)
    b = rng.standard_normal(graph.num_vertices)
    b -= b.mean()
    config = SparsifierConfig.practical(bundle_t=2)

    print(f"grid Laplacian: n={graph.num_vertices}, m={graph.num_edges}")

    plain = baseline_cg_solve(graph, b, tol=1e-8)
    jacobi = baseline_jacobi_cg_solve(graph, b, tol=1e-8)
    chained = solve_laplacian(graph, b, tol=1e-8, config=config, seed=1)

    print(f"  plain CG       : {plain.iterations:4d} iterations, work ~{plain.work:.2e}")
    print(f"  Jacobi-PCG     : {jacobi.iterations:4d} iterations, work ~{jacobi.work:.2e}")
    print(f"  chain-PCG      : {chained.result.iterations:4d} iterations, "
          f"work ~{chained.result.work:.2e}")
    print(f"  chain: {chained.work_model.summary()}")
    residual = np.linalg.norm(graph.laplacian() @ chained.x - b) / np.linalg.norm(b)
    print(f"  final relative residual: {residual:.2e}")

    # Show what sparsification buys: level sizes with and without it.
    sparsified = build_inverse_chain(graph, config=config, sparsify=True, seed=2, max_levels=8)
    dense = build_inverse_chain(graph, config=config, sparsify=False, seed=2, max_levels=8)
    print("  chain level nnz (sparsified)    :", [level.nnz for level in sparsified.levels])
    print("  chain level nnz (no sparsifier) :", [level.nnz for level in dense.levels])


def sdd_demo() -> None:
    rng = np.random.default_rng(3)
    n = 120
    # Random sparse SDD matrix with mixed-sign off-diagonals.
    mask = rng.random((n, n)) < 0.06
    off = rng.uniform(-1.0, 1.0, size=(n, n)) * mask
    off = 0.5 * (off + off.T)
    np.fill_diagonal(off, 0.0)
    matrix = np.diag(np.abs(off).sum(axis=1) + rng.uniform(0.2, 1.0, n)) + off
    x_true = rng.standard_normal(n)
    b = matrix @ x_true

    report = solve_sdd(matrix, b, tol=1e-10, config=SparsifierConfig.practical(bundle_t=2), seed=4)
    error = np.linalg.norm(report.x - x_true) / np.linalg.norm(x_true)
    print(f"\nSDD system (n={n}): {report.result.iterations} iterations, "
          f"relative solution error {error:.2e}")
    print(f"  condition estimate: {report.condition_estimate:.1f}, "
          f"chain depth {report.chain.depth}, chain nnz {report.work_model.chain_total_nnz}")


def main() -> None:
    laplacian_demo()
    sdd_demo()


if __name__ == "__main__":
    main()
